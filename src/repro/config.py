"""Configuration objects for dataset construction, models, and experiments.

Every configurable component takes a dataclass config with validated fields;
``validate()`` is called by consumers before use so that bad values fail fast
with a :class:`~repro.exceptions.ConfigurationError` instead of producing
silently wrong results deep inside a training loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field, asdict

from repro.exceptions import ConfigurationError


@dataclass
class DatasetConfig:
    """Parameters of the synthetic UltraWiki construction pipeline.

    The defaults correspond to the ``small`` profile used by benchmarks; the
    paper-scale numbers are documented in DESIGN.md.
    """

    seed: int = 13
    #: number of fine-grained semantic classes to instantiate (max 10).
    num_fine_classes: int = 10
    #: entities generated per fine-grained class.
    entities_per_class: int = 180
    #: distractor entities sampled from "other Wikipedia pages".
    num_distractors: int = 700
    #: average number of context sentences per entity (scaled by popularity).
    sentences_per_entity: float = 6.0
    #: fraction of entities given long-tail (low) popularity.
    long_tail_fraction: float = 0.3
    #: minimum number of target entities for P and N (paper: n_thred = 6).
    min_targets: int = 6
    #: queries generated per ultra-fine-grained class (paper: 3).
    queries_per_class: int = 3
    #: inclusive range for the number of positive / negative seeds per query.
    min_seeds: int = 3
    max_seeds: int = 5
    #: maximum ultra-fine-grained classes per fine-grained class; the paper
    #: derives 261 classes from 10 fine-grained classes (~26 each).
    max_ultra_classes_per_fine_class: int = 26
    #: number of BM25-mined hard distractors to add per fine-grained class.
    hard_negatives_per_class: int = 30
    #: probability that Wikidata can answer an attribute query automatically
    #: (the remainder is "manually annotated" by the annotation simulator).
    wikidata_coverage: float = 0.7

    def validate(self) -> None:
        if not 1 <= self.num_fine_classes <= 10:
            raise ConfigurationError("num_fine_classes must be in [1, 10]")
        if self.entities_per_class < 20:
            raise ConfigurationError("entities_per_class must be >= 20")
        if self.min_seeds < 1 or self.max_seeds < self.min_seeds:
            raise ConfigurationError("invalid seed range")
        if self.min_targets < self.max_seeds + 1:
            raise ConfigurationError(
                "min_targets must exceed max_seeds so queries leave targets to rank"
            )
        if not 0.0 <= self.long_tail_fraction <= 1.0:
            raise ConfigurationError("long_tail_fraction must be in [0, 1]")
        if not 0.0 <= self.wikidata_coverage <= 1.0:
            raise ConfigurationError("wikidata_coverage must be in [0, 1]")
        if self.sentences_per_entity <= 0:
            raise ConfigurationError("sentences_per_entity must be positive")

    @classmethod
    def tiny(cls, seed: int = 13) -> "DatasetConfig":
        """A minimal profile for unit tests."""
        return cls(
            seed=seed,
            num_fine_classes=4,
            entities_per_class=60,
            num_distractors=120,
            sentences_per_entity=4.0,
            max_ultra_classes_per_fine_class=6,
            hard_negatives_per_class=10,
        )

    @classmethod
    def small(cls, seed: int = 13) -> "DatasetConfig":
        """The benchmark profile (all 10 classes, a few thousand entities)."""
        return cls(seed=seed)

    @classmethod
    def default(cls, seed: int = 13) -> "DatasetConfig":
        """A larger profile for closer-to-paper experiments."""
        return cls(
            seed=seed,
            entities_per_class=600,
            num_distractors=2500,
            sentences_per_entity=7.0,
        )

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass
class EncoderConfig:
    """Hyper-parameters of the masked-entity context encoder (BERT substitute)."""

    seed: int = 17
    embedding_dim: int = 64
    hidden_dim: int = 96
    context_window: int = 8
    epochs: int = 3
    batch_size: int = 64
    learning_rate: float = 5e-3
    #: label smoothing factor eta in the entity-prediction loss (Eq. 4).
    label_smoothing: float = 0.1
    #: maximum sentences sampled per entity when building representations.
    max_sentences_per_entity: int = 20
    #: relative weight of the trained hidden state vs the pretrained entity
    #: feature in the combined representation (0 = pretrained only).
    hidden_weight: float = 0.35

    def validate(self) -> None:
        if self.embedding_dim <= 0 or self.hidden_dim <= 0:
            raise ConfigurationError("dimensions must be positive")
        if not 0.0 <= self.label_smoothing < 1.0:
            raise ConfigurationError("label_smoothing must be in [0, 1)")
        if self.epochs < 0:
            raise ConfigurationError("epochs must be non-negative")
        if self.batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")
        if self.learning_rate <= 0:
            raise ConfigurationError("learning_rate must be positive")
        if not 0.0 <= self.hidden_weight <= 1.0:
            raise ConfigurationError("hidden_weight must be in [0, 1]")


@dataclass
class ContrastiveConfig:
    """Hyper-parameters of ultra-fine-grained contrastive learning (Section V-A.2)."""

    seed: int = 19
    projection_dim: int = 48
    temperature: float = 0.1
    epochs: int = 3
    batch_size: int = 32
    learning_rate: float = 5e-3
    #: |L_pos| and |L_neg|: entities mined by the oracle per query (paper: 10).
    mined_list_size: int = 10
    #: include hard negative pairs (L_pos x L_neg).
    use_hard_negatives: bool = True
    #: include normal negative pairs against other-class entities (L0').
    use_normal_negatives: bool = True
    #: include positive pairs within L_pos and within L_neg.
    use_intra_positive_pairs: bool = True
    #: number of other-class entities sampled as L0'.
    num_other_class_entities: int = 30

    def validate(self) -> None:
        if self.temperature <= 0:
            raise ConfigurationError("temperature must be positive")
        if self.projection_dim <= 0:
            raise ConfigurationError("projection_dim must be positive")
        if self.mined_list_size <= 0:
            raise ConfigurationError("mined_list_size must be positive")


@dataclass
class CausalLMConfig:
    """Hyper-parameters of the causal entity LM (LLaMA substitute)."""

    seed: int = 23
    #: n-gram order of the token LM.
    ngram_order: int = 3
    #: additive smoothing for n-gram probabilities.
    smoothing: float = 0.1
    #: dimensionality of entity co-occurrence embeddings.
    embedding_dim: int = 64
    #: interpolation weight of the entity-affinity component during
    #: prefix-constrained generation (0 = pure n-gram LM).
    affinity_weight: float = 0.85
    #: whether continued pre-training on the corpus is applied.
    further_pretrain: bool = True

    def validate(self) -> None:
        if self.ngram_order < 1:
            raise ConfigurationError("ngram_order must be >= 1")
        if self.smoothing <= 0:
            raise ConfigurationError("smoothing must be positive")
        if not 0.0 <= self.affinity_weight <= 1.0:
            raise ConfigurationError("affinity_weight must be in [0, 1]")


@dataclass
class OracleConfig:
    """Behaviour of the simulated GPT-4 oracle.

    The oracle answers attribute questions from ground truth but with
    popularity-dependent noise and a hallucination rate, reproducing the
    failure modes reported in Section VI-B(5).
    """

    seed: int = 29
    #: error probability for a perfectly popular entity.
    base_error_rate: float = 0.08
    #: additional error probability for a completely long-tail entity.
    long_tail_error_rate: float = 0.35
    #: probability of emitting a hallucinated (non-existent) entity name per slot.
    hallucination_rate: float = 0.1

    def validate(self) -> None:
        for name in ("base_error_rate", "long_tail_error_rate", "hallucination_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1]")


@dataclass
class RetExpanConfig:
    """End-to-end configuration of the RetExpan pipeline."""

    encoder: EncoderConfig = field(default_factory=EncoderConfig)
    contrastive: ContrastiveConfig = field(default_factory=ContrastiveConfig)
    #: expansion list size K (paper keeps top-K before re-ranking).
    expansion_size: int = 200
    #: segment length l for segmented re-ranking.
    segment_length: int = 20
    #: enable the entity-prediction auxiliary task (ablated in Table III).
    use_entity_prediction: bool = True
    #: enable ultra-fine-grained contrastive learning ("+ Contrast").
    use_contrastive: bool = False
    #: weight of the contrastive (projected-space) score when re-scoring L0.
    contrastive_weight: float = 0.5
    #: enable re-ranking with negative seeds (ablated in Table IV).
    use_negative_rerank: bool = True

    def validate(self) -> None:
        self.encoder.validate()
        self.contrastive.validate()
        if self.expansion_size <= 0:
            raise ConfigurationError("expansion_size must be positive")
        if self.segment_length <= 0:
            raise ConfigurationError("segment_length must be positive")
        if self.contrastive_weight < 0:
            raise ConfigurationError("contrastive_weight must be non-negative")


@dataclass
class GenExpanConfig:
    """End-to-end configuration of the GenExpan pipeline."""

    lm: CausalLMConfig = field(default_factory=CausalLMConfig)
    oracle: OracleConfig = field(default_factory=OracleConfig)
    #: number of expansion iterations.
    num_iterations: int = 7
    #: entities generated per iteration (beam width of constrained search).
    beam_width: int = 24
    #: entities kept per iteration after selection (top-p in the paper).
    selected_per_iteration: int = 24
    #: final ranked list size.
    expansion_size: int = 200
    #: segment length l for segmented re-ranking.
    segment_length: int = 20
    #: constrain decoding with the candidate prefix tree (ablated in Table III).
    use_prefix_constraint: bool = True
    #: continued pre-training on the corpus (ablated in Table III).
    use_further_pretrain: bool = True
    #: re-rank with negative seeds (ablated in Table IV).
    use_negative_rerank: bool = True
    #: chain-of-thought reasoning mode: "none", "gen", or "gt" combined with
    #: which pieces of reasoning are included (class name / pos attrs / neg attrs).
    cot_mode: str = "none"

    VALID_COT_MODES = (
        "none",
        "gt_class",
        "gen_class",
        "gen_class_gen_pos",
        "gen_class_gt_pos",
        "gen_class_gen_pos_gen_neg",
        "gen_class_gt_pos_gt_neg",
    )

    def validate(self) -> None:
        self.lm.validate()
        self.oracle.validate()
        if self.num_iterations <= 0:
            raise ConfigurationError("num_iterations must be positive")
        if self.beam_width <= 0 or self.selected_per_iteration <= 0:
            raise ConfigurationError("beam_width / selected_per_iteration must be positive")
        if self.expansion_size <= 0:
            raise ConfigurationError("expansion_size must be positive")
        if self.segment_length <= 0:
            raise ConfigurationError("segment_length must be positive")
        if self.cot_mode not in self.VALID_COT_MODES:
            raise ConfigurationError(
                f"cot_mode must be one of {self.VALID_COT_MODES}, got {self.cot_mode!r}"
            )


@dataclass
class EvaluationConfig:
    """Evaluation protocol parameters."""

    cutoffs: tuple[int, ...] = (10, 20, 50, 100)

    def validate(self) -> None:
        if not self.cutoffs or any(k <= 0 for k in self.cutoffs):
            raise ConfigurationError("cutoffs must be positive integers")


@dataclass
class ServiceConfig:
    """Parameters of the online expansion service (:mod:`repro.serve`)."""

    #: maximum number of fitted expanders kept in the registry (LRU-evicted;
    #: pinned expanders are never evicted and do not count toward the limit).
    registry_capacity: int = 8
    #: maximum number of cached expansion results.
    cache_capacity: int = 1024
    #: result time-to-live in seconds; ``None`` disables expiry.
    cache_ttl_seconds: float | None = 300.0
    #: largest number of requests coalesced into one ``expand_batch`` call.
    max_batch_size: int = 16
    #: how long the batcher holds the first request of a batch open for
    #: followers, in milliseconds; 0 executes every request unbatched.
    batch_wait_ms: float = 2.0
    #: worker threads executing batches.
    batch_workers: int = 2
    #: ranked-list size used when a request does not specify ``top_k``.
    default_top_k: int = 100
    #: bind address of the HTTP server.
    host: str = "127.0.0.1"
    #: TCP port of the HTTP server; 0 picks an ephemeral port.
    port: int = 8080
    #: directory of the persistent fitted-expander artifact store
    #: (:mod:`repro.store`); ``None`` keeps fits in-process only.
    store_dir: str | None = None
    #: emit one structured JSON access-log line per HTTP request (request_id,
    #: verb, route, status, latency_ms, cache hit) on the
    #: ``repro.serve.access`` logger instead of http.server's stderr chatter.
    access_log: bool = False
    #: guard cold fits with a cross-process lock file in the store directory
    #: so N workers sharing one store pay each fit exactly once (no-op when
    #: no store is attached).
    fit_lock: bool = True
    #: ceiling on how long a request waits for another worker's in-flight
    #: fit before fitting locally anyway (liveness over single-payer).
    fit_lock_wait_seconds: float = 600.0
    #: run periodic store GC inside the serving process every this many
    #: seconds; ``None`` disables the background janitor.
    store_gc_interval_seconds: float | None = None
    #: artifact-store size budget enforced by the janitor: when the store
    #: grows past this many bytes, least-recently-restored artifacts are
    #: evicted first; ``None`` cleans only the staging area.
    store_max_bytes: int | None = None
    #: record counters/gauges/latency histograms on the service's metrics
    #: registry (:mod:`repro.obs`); ``False`` swaps in no-op instruments —
    #: the mode the benchmark overhead guard measures its baseline with.
    metrics_enabled: bool = True
    #: emit a JSON slow-query log line (logger ``repro.obs.slowlog``) for
    #: every expand slower than this many milliseconds, with per-stage span
    #: timings attached; ``None`` disables the slow-query log.
    slow_query_ms: float | None = None
    #: also write slow-query lines to this file (size-rotated); ``None``
    #: keeps them on the logger only.
    slow_query_log: str | None = None
    #: rotate the slow-query log file to a single ``.1`` backup once it
    #: crosses this many bytes.
    slow_query_max_bytes: int = 10 * 1024 * 1024
    #: push-exporter kind shipping the metrics registry to an external
    #: collector in the background: ``"statsd"`` (UDP line protocol) or
    #: ``"json"`` (OTLP-flavored JSON POST batches); ``None`` disables push.
    exporter: str | None = None
    #: exporter sink address — ``host:port`` for statsd, an ``http(s)://``
    #: URL for the JSON exporter.
    exporter_target: str | None = None
    #: seconds between background exporter flushes.
    exporter_interval_seconds: float = 10.0
    #: ship retries per flush (exponential backoff) before the batch is
    #: dropped and counted in ``obs_exporter_dropped_series_total``.
    exporter_max_retries: int = 3
    #: API keyfile (JSON, see :mod:`repro.gate.tenants`) enabling the
    #: multi-tenant front door; ``None`` leaves the server open.
    keyfile: str | None = None
    #: how often the keyfile is re-statted for hot reload, in seconds.
    keyfile_reload_seconds: float = 1.0
    #: token-bucket quota (``"RATE"`` or ``"RATE:BURST"``, requests/second)
    #: applied to tenants without an explicit quota — and, with no keyfile,
    #: to the shared anonymous tenant; ``None`` disables quota enforcement
    #: for those callers.
    default_quota: str | None = None
    #: execution slots of the admission controller; requests past this run
    #: concurrency wait in a bounded, two-lane queue (interactive traffic
    #: preempts batch/fit).  ``None`` disables admission control.
    admission_max_concurrent: int | None = None
    #: waiting requests past which new sheddable arrivals get an immediate
    #: retryable 503 instead of queueing.
    admission_queue_depth: int = 32
    #: longest a sheddable request waits for a slot before a 503.
    admission_timeout_seconds: float = 10.0
    #: head-sampling probability for the trace collector: each request
    #: flips one coin at this rate; sampled requests get a full span tree
    #: stored in the in-memory trace ring (``GET /v1/traces``).  ``0.0``
    #: installs the collector with sampling off (slow/errored traces are
    #: still kept when slow-query tracing produces them); ``None`` disables
    #: the collector entirely.
    trace_sample_rate: float | None = None
    #: capacity of the in-memory ring of kept traces.
    trace_buffer_size: int = 256
    #: seed for the sampling RNG; ``None`` seeds from the OS.  A fixed seed
    #: makes the kept-trace sequence reproducible (tests, load replays).
    trace_sample_seed: int | None = None
    #: also ship kept traces' spans through the push exporter (requires
    #: ``exporter="json"``; spans go out as OTLP-flavored ``resourceSpans``).
    trace_export: bool = False
    #: meter per-tenant compute-seconds (batch-amortized execute shares,
    #: cache-hit costs, fit wall-time) in memory; surfaced in ``/v1/stats``
    #: and the dashboard tenants table.
    usage_metering: bool = False
    #: JSONL usage-ledger path; setting it implies metering and persists
    #: per-tenant deltas once per rollup window (``repro usage report``
    #: sums the file offline).
    usage_ledger: str | None = None
    #: seconds between usage-ledger rollup lines.
    usage_rollup_interval_seconds: float = 30.0

    def validate(self) -> None:
        if self.slow_query_ms is not None and self.slow_query_ms < 0:
            raise ConfigurationError("slow_query_ms must be non-negative or None")
        if self.slow_query_log is not None and not str(self.slow_query_log).strip():
            raise ConfigurationError("slow_query_log must be a non-empty path or None")
        if self.slow_query_max_bytes <= 0:
            raise ConfigurationError("slow_query_max_bytes must be positive")
        if self.exporter is not None and self.exporter not in ("statsd", "json"):
            raise ConfigurationError('exporter must be "statsd", "json", or None')
        if self.exporter is not None and not self.exporter_target:
            raise ConfigurationError("exporter_target is required with an exporter")
        if self.exporter_interval_seconds <= 0:
            raise ConfigurationError("exporter_interval_seconds must be positive")
        if self.exporter_max_retries < 0:
            raise ConfigurationError("exporter_max_retries must be non-negative")
        if self.store_dir is not None and not str(self.store_dir).strip():
            raise ConfigurationError("store_dir must be a non-empty path or None")
        if self.fit_lock_wait_seconds <= 0:
            raise ConfigurationError("fit_lock_wait_seconds must be positive")
        if (
            self.store_gc_interval_seconds is not None
            and self.store_gc_interval_seconds <= 0
        ):
            raise ConfigurationError(
                "store_gc_interval_seconds must be positive or None"
            )
        if self.store_max_bytes is not None and self.store_max_bytes < 0:
            raise ConfigurationError("store_max_bytes must be non-negative or None")
        if self.registry_capacity < 1:
            raise ConfigurationError("registry_capacity must be >= 1")
        if self.cache_capacity < 0:
            raise ConfigurationError("cache_capacity must be non-negative")
        if self.cache_ttl_seconds is not None and self.cache_ttl_seconds <= 0:
            raise ConfigurationError("cache_ttl_seconds must be positive or None")
        if self.max_batch_size < 1:
            raise ConfigurationError("max_batch_size must be >= 1")
        if self.batch_wait_ms < 0:
            raise ConfigurationError("batch_wait_ms must be non-negative")
        if self.batch_workers < 1:
            raise ConfigurationError("batch_workers must be >= 1")
        if self.default_top_k < 1:
            raise ConfigurationError("default_top_k must be >= 1")
        if not 0 <= self.port <= 65535:
            raise ConfigurationError("port must be in [0, 65535]")
        if self.keyfile is not None and not str(self.keyfile).strip():
            raise ConfigurationError("keyfile must be a non-empty path or None")
        if self.keyfile_reload_seconds < 0:
            raise ConfigurationError("keyfile_reload_seconds must be non-negative")
        if self.default_quota is not None:
            from repro.gate.limiter import QuotaSpec

            QuotaSpec.parse(self.default_quota)  # raises ConfigurationError
        if self.admission_max_concurrent is not None and (
            self.admission_max_concurrent < 1
        ):
            raise ConfigurationError(
                "admission_max_concurrent must be >= 1 or None"
            )
        if self.admission_queue_depth < 0:
            raise ConfigurationError("admission_queue_depth must be non-negative")
        if self.trace_sample_rate is not None and not (
            0.0 <= self.trace_sample_rate <= 1.0
        ):
            raise ConfigurationError("trace_sample_rate must be in [0, 1] or None")
        if self.trace_buffer_size < 1:
            raise ConfigurationError("trace_buffer_size must be >= 1")
        if self.trace_export and self.exporter != "json":
            raise ConfigurationError(
                'trace_export requires exporter="json" (statsd cannot carry spans)'
            )
        if self.trace_export and self.trace_sample_rate is None:
            raise ConfigurationError(
                "trace_export requires trace_sample_rate (the trace collector)"
            )
        if self.usage_ledger is not None and not str(self.usage_ledger).strip():
            raise ConfigurationError("usage_ledger must be a non-empty path or None")
        if self.usage_rollup_interval_seconds <= 0:
            raise ConfigurationError(
                "usage_rollup_interval_seconds must be positive"
            )
        if self.admission_timeout_seconds <= 0:
            raise ConfigurationError("admission_timeout_seconds must be positive")


@dataclass
class ClusterConfig:
    """Parameters of the multi-worker deployment (:mod:`repro.cluster`).

    A cluster is a routing gateway in front of ``num_workers`` ``repro
    serve`` processes: workers listen on consecutive ports starting at
    ``worker_base_port``, the gateway consistent-hashes method-affine
    traffic across them, and the pool restarts crashed workers with
    exponential backoff.  Per-worker serving behaviour (cache, batching,
    store) lives on the embedded :class:`ServiceConfig`.
    """

    #: number of serving worker processes behind the gateway.
    num_workers: int = 2
    #: bind address of the worker processes.
    worker_host: str = "127.0.0.1"
    #: workers listen on ``worker_base_port + i`` (must be explicit ports:
    #: the gateway needs to know every worker URL up front).
    worker_base_port: int = 8100
    #: bind address / port of the routing gateway; port 0 picks ephemeral.
    gateway_host: str = "127.0.0.1"
    gateway_port: int = 8080
    #: virtual nodes per worker on the consistent-hash ring.
    virtual_nodes: int = 64
    #: seconds between worker health probes.
    health_interval_seconds: float = 0.5
    #: per-probe (and per-proxy-connect) health timeout.
    health_timeout_seconds: float = 2.0
    #: consecutive failed probes before a live worker is recycled.
    unhealthy_threshold: int = 3
    #: base / ceiling of the exponential restart backoff.
    restart_backoff_seconds: float = 0.5
    restart_backoff_max_seconds: float = 30.0
    #: extra per-worker delay so simultaneous crashes restart staggered.
    restart_stagger_seconds: float = 0.25
    #: how long the gateway sidelines a worker after a failed proxy attempt
    #: before routing traffic at it again.
    failover_cooldown_seconds: float = 1.0
    #: socket timeout for gateway -> worker proxy calls (covers in-request
    #: cold fits, hence much larger than the health timeout).
    proxy_timeout_seconds: float = 120.0
    #: emit one structured JSON access-log line per gateway request on the
    #: ``repro.cluster.access`` logger (mirrors ``ServiceConfig.access_log``).
    gateway_access_log: bool = False
    #: push exporter shipping the *gateway's* metrics registry (worker
    #: registries ship via the embedded service config): ``"statsd"``,
    #: ``"json"``, or ``None``.
    gateway_exporter: str | None = None
    #: gateway exporter sink — ``host:port`` (statsd) or URL (json).
    gateway_exporter_target: str | None = None
    #: seconds between gateway exporter flushes.
    gateway_exporter_interval_seconds: float = 10.0
    #: API keyfile enforced at the *gateway* (workers behind it stay open
    #: and trust the gateway's forwarded tenant header); ``None`` leaves
    #: the cluster front door open.
    keyfile: str | None = None
    #: keyfile hot-reload stat interval, in seconds.
    keyfile_reload_seconds: float = 1.0
    #: gateway-enforced default quota (``"RATE"`` or ``"RATE:BURST"``).
    default_quota: str | None = None
    #: entries in the gateway-side expand result cache; ``0`` disables it
    #: (every request is proxied, the seed behaviour).  Enabled, repeated
    #: identical expand requests are answered at the gateway without a
    #: worker round trip.
    gateway_cache_capacity: int = 0
    #: TTL of gateway-cached expand responses (``None`` = no expiry).
    gateway_cache_ttl_seconds: float | None = 60.0
    #: per-worker serving parameters.
    service: ServiceConfig = field(default_factory=ServiceConfig)

    def validate(self) -> None:
        if self.num_workers < 1:
            raise ConfigurationError("num_workers must be >= 1")
        if not 1 <= self.worker_base_port <= 65535:
            raise ConfigurationError("worker_base_port must be in [1, 65535]")
        if self.worker_base_port + self.num_workers - 1 > 65535:
            raise ConfigurationError("worker ports exceed 65535")
        if not 0 <= self.gateway_port <= 65535:
            raise ConfigurationError("gateway_port must be in [0, 65535]")
        if self.virtual_nodes < 1:
            raise ConfigurationError("virtual_nodes must be >= 1")
        if self.health_interval_seconds <= 0 or self.health_timeout_seconds <= 0:
            raise ConfigurationError("health intervals must be positive")
        if self.unhealthy_threshold < 1:
            raise ConfigurationError("unhealthy_threshold must be >= 1")
        if self.restart_backoff_seconds <= 0:
            raise ConfigurationError("restart_backoff_seconds must be positive")
        if self.restart_backoff_max_seconds < self.restart_backoff_seconds:
            raise ConfigurationError(
                "restart_backoff_max_seconds must be >= restart_backoff_seconds"
            )
        if self.restart_stagger_seconds < 0:
            raise ConfigurationError("restart_stagger_seconds must be non-negative")
        if self.failover_cooldown_seconds < 0:
            raise ConfigurationError("failover_cooldown_seconds must be non-negative")
        if self.proxy_timeout_seconds <= 0:
            raise ConfigurationError("proxy_timeout_seconds must be positive")
        if self.gateway_exporter is not None and self.gateway_exporter not in (
            "statsd", "json",
        ):
            raise ConfigurationError(
                'gateway_exporter must be "statsd", "json", or None'
            )
        if self.gateway_exporter is not None and not self.gateway_exporter_target:
            raise ConfigurationError(
                "gateway_exporter_target is required with a gateway exporter"
            )
        if self.gateway_exporter_interval_seconds <= 0:
            raise ConfigurationError(
                "gateway_exporter_interval_seconds must be positive"
            )
        if self.keyfile is not None and not str(self.keyfile).strip():
            raise ConfigurationError("keyfile must be a non-empty path or None")
        if self.keyfile_reload_seconds < 0:
            raise ConfigurationError("keyfile_reload_seconds must be non-negative")
        if self.default_quota is not None:
            from repro.gate.limiter import QuotaSpec

            QuotaSpec.parse(self.default_quota)  # raises ConfigurationError
        if self.gateway_cache_capacity < 0:
            raise ConfigurationError("gateway_cache_capacity must be non-negative")
        if (
            self.gateway_cache_ttl_seconds is not None
            and self.gateway_cache_ttl_seconds <= 0
        ):
            raise ConfigurationError(
                "gateway_cache_ttl_seconds must be positive or None"
            )
        self.service.validate()

    def worker_port(self, index: int) -> int:
        return self.worker_base_port + index

    def worker_url(self, index: int) -> str:
        return f"http://{self.worker_host}:{self.worker_port(index)}"
