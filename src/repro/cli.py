"""Command-line interface.

Three subcommands cover the workflows a downstream user needs without
writing Python:

* ``build-dataset`` — construct a synthetic UltraWiki-style dataset and save
  it to disk;
* ``list-experiments`` — show every reproducible paper artefact and its
  benchmark target;
* ``run-experiment`` — run one experiment (table/figure) and print the rows
  the paper reports, optionally writing the raw output as JSON.

Examples::

    python -m repro.cli build-dataset --profile small --output ./ultrawiki
    python -m repro.cli list-experiments
    python -m repro.cli run-experiment table2 --profile tiny --max-queries 12
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.config import DatasetConfig
from repro.dataset.analysis import compute_statistics
from repro.dataset.builder import build_dataset
from repro.experiments.registry import EXPERIMENTS, experiment_by_id
from repro.experiments.runner import ExperimentContext

_PROFILES = {
    "tiny": DatasetConfig.tiny,
    "small": DatasetConfig.small,
    "default": DatasetConfig.default,
}


def _dataset_config(profile: str, seed: int) -> DatasetConfig:
    try:
        factory = _PROFILES[profile]
    except KeyError:
        raise SystemExit(f"unknown profile {profile!r}; choose from {sorted(_PROFILES)}")
    return factory(seed=seed)


def _cmd_build_dataset(args: argparse.Namespace) -> int:
    config = _dataset_config(args.profile, args.seed)
    print(f"Building dataset (profile={args.profile}, seed={args.seed}) ...")
    dataset = build_dataset(config)
    stats = compute_statistics(dataset)
    print(
        f"  entities={stats.num_entities} sentences={stats.num_sentences} "
        f"ultra_classes={stats.num_ultra_classes} queries={stats.num_queries}"
    )
    if args.output:
        dataset.save(args.output)
        print(f"  saved to {Path(args.output).resolve()}")
    return 0


def _cmd_list_experiments(args: argparse.Namespace) -> int:
    width = max(len(spec.experiment_id) for spec in EXPERIMENTS)
    for spec in EXPERIMENTS:
        print(f"{spec.experiment_id.ljust(width)}  {spec.title}  [{spec.bench_target}]")
    return 0


def _cmd_run_experiment(args: argparse.Namespace) -> int:
    spec = experiment_by_id(args.experiment_id)
    config = _dataset_config(args.profile, args.seed)
    print(f"Running {spec.experiment_id}: {spec.title}")
    print(f"  profile={args.profile} max_queries={args.max_queries} "
          f"genexpan_max_queries={args.genexpan_max_queries}")
    context = ExperimentContext(
        dataset_config=config,
        max_queries=args.max_queries,
        genexpan_max_queries=args.genexpan_max_queries,
        seed=args.seed,
    )
    output = spec.runner(context)
    print()
    print(output.get("text", "(no text output)"))
    if args.json:
        serialisable = {
            key: value for key, value in output.items() if key != "text"
        }
        Path(args.json).write_text(json.dumps(serialisable, indent=2, default=str))
        print(f"\nwrote JSON output to {Path(args.json).resolve()}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="UltraWiki (Ultra-ESE) reproduction command-line interface",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    build = subparsers.add_parser("build-dataset", help="construct and optionally save a dataset")
    build.add_argument("--profile", default="small", choices=sorted(_PROFILES))
    build.add_argument("--seed", type=int, default=13)
    build.add_argument("--output", default=None, help="directory to save the dataset to")
    build.set_defaults(handler=_cmd_build_dataset)

    lister = subparsers.add_parser("list-experiments", help="list reproducible paper artefacts")
    lister.set_defaults(handler=_cmd_list_experiments)

    run = subparsers.add_parser("run-experiment", help="run one table/figure experiment")
    run.add_argument("experiment_id", help="e.g. table2, figure4")
    run.add_argument("--profile", default="small", choices=sorted(_PROFILES))
    run.add_argument("--seed", type=int, default=13)
    run.add_argument("--max-queries", type=int, default=40)
    run.add_argument("--genexpan-max-queries", type=int, default=20)
    run.add_argument("--json", default=None, help="path to write the raw output as JSON")
    run.set_defaults(handler=_cmd_run_experiment)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
