"""Command-line interface.

The subcommands cover the workflows a downstream user needs without
writing Python:

* ``build-dataset`` — construct a synthetic UltraWiki-style dataset and save
  it to disk;
* ``list-experiments`` — show every reproducible paper artefact and its
  benchmark target;
* ``run-experiment`` — run one experiment (table/figure) and print the rows
  the paper reports, optionally writing the raw output as JSON;
* ``fit`` — prefit expansion methods and persist the fitted state into an
  artifact store (:mod:`repro.store`) so later serves warm-start; with
  ``--substrates-only`` only the shared substrates (:mod:`repro.substrate`)
  are fitted and persisted, so every later method fit skips them;
* ``store ls`` / ``store gc`` — inspect and garbage-collect the artifact
  store: ``ls`` lists method artifacts *and* content-addressed substrate
  entries with their back-references (``--human`` for readable sizes), and
  ``gc`` is reference-aware (a substrate is never collected while a method
  manifest references it, orphans are);
* ``serve`` — start the online expansion service (:mod:`repro.serve`): the
  versioned v1 JSON/HTTP API (``/v1/expand``, ``/v1/expand/batch``,
  ``/v1/methods``, ``/v1/stats``, ``/v1/healthz``, async ``/v1/fits`` jobs)
  with a lazily-fitted expander registry, result caching, and request
  micro-batching; with ``--store`` fits restore from / persist to disk and
  ``--access-log`` emits one structured JSON line per request;
* ``cluster serve`` — the horizontally scaled deployment
  (:mod:`repro.cluster`): N ``serve`` worker subprocesses (health-checked,
  restarted with backoff) behind a routing gateway that consistent-hashes
  method-affine traffic across them, scatter-gathers batches, aggregates
  ``/v1/stats``/``/v1/healthz``, and fails over when a worker dies; with a
  shared ``--store`` the cross-process fit lock makes every cold fit
  single-payer across the fleet;
* ``cluster top`` — a ``top(1)``-style refreshing terminal dashboard over a
  running gateway's ``GET /v1/dashboard``: fleet health, per-shard traffic,
  error and latency rollups, cache hit rates, substrate residency, and live
  fit-job phases;
* ``usage report`` — sum one or more JSONL usage ledgers (written by
  ``serve --usage-ledger``) into a per-tenant compute-seconds billing table;
* ``query`` — submit one expansion request through the
  :class:`~repro.client.ExpansionClient` SDK and print the ranked entities:
  in-process by default, or against a running server with ``--url``.

Examples::

    python -m repro.cli build-dataset --profile small --output ./ultrawiki
    python -m repro.cli list-experiments
    python -m repro.cli run-experiment table2 --profile tiny --max-queries 12
    python -m repro.cli fit --dataset ./ultrawiki --store ./artifacts --methods retexpan
    python -m repro.cli store ls --store ./artifacts
    python -m repro.cli serve --dataset ./ultrawiki --store ./artifacts --port 8080
    python -m repro.cli cluster serve --dataset ./ultrawiki --store ./artifacts \
        --workers 4 --port 8080 --worker-base-port 8100
    python -m repro.cli cluster top --url http://127.0.0.1:8080
    python -m repro.cli query --dataset ./ultrawiki --method retexpan --top-k 20
    python -m repro.cli query --url http://127.0.0.1:8080 --method retexpan \
        --query-id <id> --top-k 20

Serving workflow: ``build-dataset`` once, ``fit`` to persist the expensive
model fits, then ``serve --store`` against the same directories — the
service restores every prefitted method from disk instead of re-training it,
and POST ``{"method": "retexpan", "query_id": ...}`` to ``/v1/expand``
answers immediately (or warm any method first via ``POST /v1/fits``);
restore/write-through counters appear under ``/v1/stats``.
"""

from __future__ import annotations

import argparse
import logging
import shutil
import signal
import sys
import tempfile
import time
from pathlib import Path

from repro.client import ExpansionClient
from repro.cluster import ClusterGateway, WorkerPool, WorkerSpec
from repro.config import ClusterConfig, DatasetConfig, ServiceConfig
from repro.dataset.analysis import compute_statistics
from repro.dataset.builder import build_dataset
from repro.dataset.ultrawiki import UltraWikiDataset
from repro.exceptions import TransportError
from repro.experiments.registry import EXPERIMENTS, experiment_by_id
from repro.experiments.runner import ExperimentContext
from repro.serve import (
    ExpanderRegistry,
    ExpandOptions,
    ExpansionHTTPServer,
    ExpansionService,
)
from repro.cluster.gateway import gateway_access_logger
from repro.obs import read_ledger, slow_query_logger
from repro.obs.top import render_dashboard
from repro.serve.server import access_logger
from repro.store import ArtifactStore
from repro.utils.iox import to_jsonable, write_json

_PROFILES = {
    "tiny": DatasetConfig.tiny,
    "small": DatasetConfig.small,
    "default": DatasetConfig.default,
}


def _dataset_config(profile: str, seed: int) -> DatasetConfig:
    try:
        factory = _PROFILES[profile]
    except KeyError:
        raise SystemExit(f"unknown profile {profile!r}; choose from {sorted(_PROFILES)}")
    return factory(seed=seed)


def _cmd_build_dataset(args: argparse.Namespace) -> int:
    config = _dataset_config(args.profile, args.seed)
    print(f"Building dataset (profile={args.profile}, seed={args.seed}) ...")
    dataset = build_dataset(config)
    stats = compute_statistics(dataset)
    print(
        f"  entities={stats.num_entities} sentences={stats.num_sentences} "
        f"ultra_classes={stats.num_ultra_classes} queries={stats.num_queries}"
    )
    if args.output:
        dataset.save(args.output)
        print(f"  saved to {Path(args.output).resolve()}")
    return 0


def _cmd_list_experiments(args: argparse.Namespace) -> int:
    width = max(len(spec.experiment_id) for spec in EXPERIMENTS)
    for spec in EXPERIMENTS:
        print(f"{spec.experiment_id.ljust(width)}  {spec.title}  [{spec.bench_target}]")
    return 0


def _cmd_run_experiment(args: argparse.Namespace) -> int:
    spec = experiment_by_id(args.experiment_id)
    config = _dataset_config(args.profile, args.seed)
    print(f"Running {spec.experiment_id}: {spec.title}")
    print(f"  profile={args.profile} max_queries={args.max_queries} "
          f"genexpan_max_queries={args.genexpan_max_queries}")
    context = ExperimentContext(
        dataset_config=config,
        max_queries=args.max_queries,
        genexpan_max_queries=args.genexpan_max_queries,
        seed=args.seed,
    )
    output = spec.runner(context)
    print()
    print(output.get("text", "(no text output)"))
    if args.json:
        serialisable = {
            key: value for key, value in output.items() if key != "text"
        }
        write_json(args.json, to_jsonable(serialisable))
        print(f"\nwrote JSON output to {Path(args.json).resolve()}")
    return 0


def _load_or_build_dataset(args: argparse.Namespace) -> UltraWikiDataset:
    """A dataset from ``--dataset DIR`` (saved) or ``--profile`` (built)."""
    if args.dataset:
        print(f"Loading dataset from {Path(args.dataset).resolve()} ...")
        return UltraWikiDataset.load(args.dataset)
    print(f"Building dataset (profile={args.profile}, seed={args.seed}) ...")
    return build_dataset(_dataset_config(args.profile, args.seed))


def _service_config(args: argparse.Namespace) -> ServiceConfig:
    config = ServiceConfig(
        cache_capacity=args.cache_capacity,
        # only the literal 0 means "disable expiry"; negatives reach
        # validate() and are rejected there.
        cache_ttl_seconds=None if args.cache_ttl == 0 else args.cache_ttl,
        max_batch_size=args.max_batch_size,
        batch_wait_ms=args.batch_wait_ms,
        host=getattr(args, "host", ServiceConfig.host),
        port=getattr(args, "port", ServiceConfig.port),
        store_dir=getattr(args, "store", None),
        access_log=getattr(args, "access_log", False),
        slow_query_ms=getattr(args, "slow_query_ms", None),
        slow_query_log=getattr(args, "slow_query_log", None),
        slow_query_max_bytes=getattr(
            args, "slow_query_max_bytes", ServiceConfig.slow_query_max_bytes
        ),
        exporter=getattr(args, "exporter", None),
        exporter_target=getattr(args, "exporter_target", None),
        exporter_interval_seconds=getattr(
            args, "exporter_interval", ServiceConfig.exporter_interval_seconds
        ),
        exporter_max_retries=getattr(
            args, "exporter_max_retries", ServiceConfig.exporter_max_retries
        ),
        keyfile=getattr(args, "keyfile", None),
        default_quota=getattr(args, "default_quota", None),
        admission_max_concurrent=getattr(args, "admission_max_concurrent", None),
        admission_queue_depth=getattr(
            args, "admission_queue_depth", ServiceConfig.admission_queue_depth
        ),
        admission_timeout_seconds=getattr(
            args, "admission_timeout", ServiceConfig.admission_timeout_seconds
        ),
        trace_sample_rate=getattr(args, "trace_sample_rate", None),
        trace_buffer_size=getattr(
            args, "trace_buffer_size", ServiceConfig.trace_buffer_size
        ),
        trace_sample_seed=getattr(args, "trace_sample_seed", None),
        trace_export=getattr(args, "trace_export", False),
        usage_metering=getattr(args, "usage_metering", False),
        usage_ledger=getattr(args, "usage_ledger", None),
        usage_rollup_interval_seconds=getattr(
            args,
            "usage_rollup_interval_seconds",
            ServiceConfig.usage_rollup_interval_seconds,
        ),
    )
    config.validate()
    return config


def _attach_json_log_handler(logger: logging.Logger) -> None:
    """Send a structured JSON-lines logger to stderr (once)."""
    if logger.handlers:
        return
    handler = logging.StreamHandler()
    handler.setFormatter(logging.Formatter("%(message)s"))
    logger.addHandler(handler)
    logger.setLevel(logging.INFO)


def _fit_substrates(registry: "ExpanderRegistry", store: ArtifactStore, force: bool) -> int:
    """Prefit and persist only the shared substrates (no method artifacts)."""
    resources = registry.resources
    provider = resources.provider
    for kind, params in resources.default_substrate_specs():
        if force:
            # Honour --force for substrates too: drop the stored artifact so
            # the get below pays (and republishes) a fresh fit.
            store.evict_substrate(
                kind, provider.key(kind, params).content_hash, force=True
            )
        before = provider.stats()
        started = time.perf_counter()
        provider.get(kind, params)
        elapsed = time.perf_counter() - started
        after = provider.stats()
        if after["fits"] > before["fits"]:
            action = "fitted + persisted"
        elif after["restores"] > before["restores"]:
            action = "restored"
        else:
            action = "already resident"
        content_hash = provider.key(kind, params).content_hash
        print(f"  {kind:26s} {content_hash}  {action} in {elapsed:.2f}s")
    return 0


def _cmd_fit(args: argparse.Namespace) -> int:
    """Prefit methods and persist their artifacts (the warm-restart producer)."""
    dataset = _load_or_build_dataset(args)
    store = ArtifactStore(args.store)
    registry = ExpanderRegistry(dataset, store=store)
    fingerprint = dataset.fingerprint()
    print(f"Artifact store: {Path(args.store).resolve()} (fingerprint {fingerprint})")
    if args.substrates_only:
        _fit_substrates(registry, store, args.force)
    else:
        methods = args.methods or registry.methods()
        for method in methods:
            registry.ensure_known(method)
            name = method.strip().lower()  # registry stats are keyed normalized
            if args.force:
                store.evict(name, fingerprint)
            started = time.perf_counter()
            registry.get(name)
            elapsed = time.perf_counter() - started
            restored = name in registry.stats()["restore_seconds"]
            action = "restored" if restored else "fitted + persisted"
            print(f"  {name:12s} {action} in {elapsed:.2f}s")
    store_stats = store.stats()
    print(
        f"store now holds {store_stats['artifacts']} artifact(s) "
        f"({store_stats['total_bytes'] / 1e6:.1f} MB) + "
        f"{store_stats['substrates']} substrate(s) "
        f"({store_stats['substrate_bytes'] / 1e6:.1f} MB)"
    )
    return 0


def _format_bytes(num_bytes: int, human: bool) -> str:
    """``1234567`` -> ``'1.2MB'`` either way; --human scales the unit."""
    if not human:
        return f"{num_bytes / 1e6:.1f}MB"
    value = float(num_bytes)
    for unit in ("B", "kB", "MB", "GB", "TB"):
        if value < 1000.0 or unit == "TB":
            if unit == "B":
                return f"{int(value)}{unit}"
            return f"{value:.1f}{unit}"
        value /= 1000.0
    return f"{value:.1f}TB"  # pragma: no cover - unreachable


def _cmd_store_ls(args: argparse.Namespace) -> int:
    store = ArtifactStore(args.store)
    infos = store.ls()
    substrates = store.ls_substrates()
    if not infos and not substrates:
        print(f"no artifacts under {Path(args.store).resolve()}")
        return 0
    human = getattr(args, "human", False)
    if infos:
        print(f"{'METHOD':<14}{'FINGERPRINT':<18}{'SIZE':>10}  {'AGE':>8}  CLASS")
        for info in infos:
            age_h = info.age_seconds / 3600.0
            print(
                f"{info.method:<14}{info.fingerprint:<18}"
                f"{_format_bytes(info.total_bytes, human):>10}  "
                f"{age_h:>7.1f}h  {info.expander_class}"
            )
    if substrates:
        references = store.substrate_references()
        print(f"{'SUBSTRATE':<26}{'HASH':<18}{'SIZE':>10}  {'AGE':>8}  REFS")
        for info in substrates:
            age_h = info.age_seconds / 3600.0
            referencing = references.get((info.kind, info.content_hash), [])
            methods = sorted({label.split("/", 1)[0] for label in referencing})
            refs = ",".join(methods) if methods else "-"
            print(
                f"{info.kind:<26}{info.content_hash:<18}"
                f"{_format_bytes(info.total_bytes, human):>10}  "
                f"{age_h:>7.1f}h  {refs}"
            )
    stats = store.stats()
    print(
        f"total: {stats['artifacts']} artifact(s) "
        f"({_format_bytes(stats['total_bytes'], human)}) + "
        f"{stats['substrates']} substrate(s) "
        f"({_format_bytes(stats['substrate_bytes'], human)})"
    )
    return 0


def _cmd_store_gc(args: argparse.Namespace) -> int:
    store = ArtifactStore(args.store)
    keep: set[str] | None = None
    if args.keep_dataset:
        dataset = UltraWikiDataset.load(args.keep_dataset)
        keep = {dataset.fingerprint()}
    if args.keep_fingerprint:
        keep = (keep or set()) | set(args.keep_fingerprint)
    max_age = args.max_age_hours * 3600.0 if args.max_age_hours is not None else None
    if keep is None and max_age is None:
        print("no --keep-dataset/--keep-fingerprint/--max-age-hours filter; "
              "cleaning the staging area only")
    removed = store.gc(keep_fingerprints=keep, max_age_seconds=max_age)
    for info in removed:
        # gc returns method artifacts and (orphaned) substrate artifacts.
        if hasattr(info, "method"):
            label, key = info.method, info.fingerprint
        else:
            label, key = f"substrate:{info.kind}", info.content_hash
        print(f"  removed {label}/{key} ({info.total_bytes / 1e6:.1f} MB)")
    stats = store.stats()
    print(
        f"removed {len(removed)} artifact(s); {stats['artifacts']} artifact(s) + "
        f"{stats['substrates']} substrate(s) remain "
        f"({(stats['total_bytes'] + stats['substrate_bytes']) / 1e6:.1f} MB)"
    )
    return 0


def _install_sigterm_handler() -> None:
    """Turn SIGTERM into KeyboardInterrupt so ``finally:`` shutdown blocks
    run and the process exits 0 — the clean-stop contract the cluster
    worker pool relies on when it terminates workers."""

    def _on_sigterm(_signum, _frame):
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _on_sigterm)
    except ValueError:
        # not the main thread (embedded use); graceful stop is best-effort.
        pass


def _cmd_serve(args: argparse.Namespace) -> int:
    dataset = _load_or_build_dataset(args)
    config = _service_config(args)
    if config.access_log:
        _attach_json_log_handler(access_logger)
    if config.slow_query_ms is not None:
        _attach_json_log_handler(slow_query_logger)
    service = ExpansionService(dataset, config=config)
    if args.store:
        print(f"Artifact store: {Path(args.store).resolve()} "
              f"(prefitted methods restore without refitting)")
    if args.warm:
        print(f"Warming up {args.warm} ...")
        service.warm_up(args.warm)
    server = ExpansionHTTPServer(service)
    host, port = server.address
    print(f"Serving expansion API v1 on http://{host}:{port}")
    print(
        "  endpoints: POST /v1/expand · POST /v1/expand/batch · "
        "POST /v1/fits · GET /v1/fits[/<id>]"
    )
    print(
        "             GET /v1/methods · GET /v1/stats · GET /v1/metrics · "
        "GET /v1/healthz"
    )
    print("  deprecated aliases: /expand /methods /stats /healthz (pre-v1 wire shape)")
    if service.gate is not None:
        anonymous = "allowed" if (
            config.keyfile is None or service.gate.directory.allows_anonymous
        ) else "rejected (401)"
        print(
            f"  front door: keyfile={config.keyfile or 'none'} "
            f"default-quota={config.default_quota or 'none'} "
            f"anonymous={anonymous}"
        )
    if service.admission is not None:
        print(
            f"  admission: {config.admission_max_concurrent} concurrent, "
            f"queue depth {config.admission_queue_depth}, shed after "
            f"{config.admission_timeout_seconds:g}s (retryable 503)"
        )
    _install_sigterm_handler()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.shutdown()
    return 0


def worker_command(
    dataset_dir: str, host: str, port: int, args: argparse.Namespace
) -> tuple[str, ...]:
    """The argv one cluster worker is spawned with: this same CLI's ``serve``
    verb against the shared saved dataset and (optionally) shared store."""
    command = [
        sys.executable,
        "-m",
        "repro.cli",
        "serve",
        "--dataset",
        dataset_dir,
        "--host",
        host,
        "--port",
        str(port),
        "--cache-capacity",
        str(args.cache_capacity),
        "--cache-ttl",
        str(args.cache_ttl),
        "--max-batch-size",
        str(args.max_batch_size),
        "--batch-wait-ms",
        str(args.batch_wait_ms),
    ]
    if args.store:
        command += ["--store", args.store]
    if getattr(args, "warm", None):
        command += ["--warm", *args.warm]
    if getattr(args, "access_log", False):
        command.append("--access-log")
    if getattr(args, "slow_query_ms", None) is not None:
        command += ["--slow-query-ms", str(args.slow_query_ms)]
    if getattr(args, "slow_query_log", None):
        # One shared path would interleave workers; suffix with the port so
        # each worker rotates its own file.
        command += [
            "--slow-query-log",
            f"{args.slow_query_log}.{port}",
            "--slow-query-max-bytes",
            str(args.slow_query_max_bytes),
        ]
    if getattr(args, "exporter", None):
        command += [
            "--exporter",
            args.exporter,
            "--exporter-target",
            args.exporter_target,
            "--exporter-interval",
            str(args.exporter_interval),
            "--exporter-max-retries",
            str(args.exporter_max_retries),
        ]
    # Admission control is per-shard, so workers get it; auth + quota are NOT
    # forwarded — the gateway enforces them once at the front door.
    if getattr(args, "admission_max_concurrent", None) is not None:
        command += [
            "--admission-max-concurrent",
            str(args.admission_max_concurrent),
            "--admission-queue-depth",
            str(args.admission_queue_depth),
            "--admission-timeout",
            str(args.admission_timeout),
        ]
    if getattr(args, "trace_sample_rate", None) is not None:
        command += [
            "--trace-sample-rate",
            str(args.trace_sample_rate),
            "--trace-buffer-size",
            str(args.trace_buffer_size),
        ]
        if getattr(args, "trace_sample_seed", None) is not None:
            command += ["--trace-sample-seed", str(args.trace_sample_seed)]
        if getattr(args, "trace_export", False):
            command.append("--trace-export")
    if getattr(args, "usage_metering", False):
        command.append("--usage-metering")
    if getattr(args, "usage_ledger", None):
        # Like the slow-query log: one shared path would interleave
        # workers, so each worker appends to its own port-suffixed ledger.
        command += [
            "--usage-ledger",
            f"{args.usage_ledger}.{port}",
            "--usage-rollup-interval-seconds",
            str(args.usage_rollup_interval_seconds),
        ]
    return tuple(command)


def _cmd_cluster_serve(args: argparse.Namespace) -> int:
    """Gateway + N worker subprocesses over one saved dataset and store."""
    scratch_dir = None
    if args.dataset:
        dataset_dir = str(Path(args.dataset).resolve())
        dataset = UltraWikiDataset.load(dataset_dir)
        print(f"Loaded dataset from {dataset_dir}")
    else:
        # Workers load the dataset from disk, so a profile-built dataset is
        # saved once to a scratch directory every worker shares (removed
        # again at shutdown).
        print(f"Building dataset (profile={args.profile}, seed={args.seed}) ...")
        dataset = build_dataset(_dataset_config(args.profile, args.seed))
        scratch_dir = dataset_dir = tempfile.mkdtemp(prefix="repro-cluster-dataset-")
        dataset.save(dataset_dir)
        print(f"  saved shared dataset to {dataset_dir}")
    fingerprint = dataset.fingerprint()

    # Tenancy is enforced once, at the gateway: workers run open behind it,
    # so the keyfile and default quota are stripped from the worker config.
    service_config = _service_config(args)
    service_config.keyfile = None
    service_config.default_quota = None
    config = ClusterConfig(
        num_workers=args.workers,
        worker_host=args.worker_host,
        worker_base_port=args.worker_base_port,
        gateway_host=args.host,
        gateway_port=args.port,
        gateway_access_log=getattr(args, "gateway_access_log", False),
        gateway_exporter=getattr(args, "gateway_exporter", None),
        gateway_exporter_target=getattr(args, "gateway_exporter_target", None),
        gateway_exporter_interval_seconds=getattr(
            args,
            "gateway_exporter_interval",
            ClusterConfig.gateway_exporter_interval_seconds,
        ),
        keyfile=getattr(args, "keyfile", None),
        keyfile_reload_seconds=getattr(
            args, "keyfile_reload", ClusterConfig.keyfile_reload_seconds
        ),
        default_quota=getattr(args, "default_quota", None),
        gateway_cache_capacity=getattr(args, "gateway_cache_size", 0),
        gateway_cache_ttl_seconds=getattr(
            args, "gateway_cache_ttl", ClusterConfig.gateway_cache_ttl_seconds
        ),
        service=service_config,
    )
    config.validate()
    if config.gateway_access_log:
        _attach_json_log_handler(gateway_access_logger)

    specs = [
        WorkerSpec(
            worker_id=f"worker-{index}",
            url=config.worker_url(index),
            command=worker_command(
                dataset_dir, config.worker_host, config.worker_port(index), args
            ),
        )
        for index in range(config.num_workers)
    ]
    pool = WorkerPool(
        specs,
        health_interval=config.health_interval_seconds,
        health_timeout=config.health_timeout_seconds,
        unhealthy_threshold=config.unhealthy_threshold,
        restart_backoff=config.restart_backoff_seconds,
        restart_backoff_max=config.restart_backoff_max_seconds,
        restart_stagger=config.restart_stagger_seconds,
    )
    print(f"Starting {config.num_workers} worker(s) ...")
    _install_sigterm_handler()
    try:
        pool.start(wait_healthy=True, timeout=args.startup_timeout)
        for endpoint in pool.endpoints():
            print(f"  {endpoint.worker_id}: {endpoint.url}")
        gateway = ClusterGateway(
            [(spec.worker_id, spec.url) for spec in specs],
            config=config,
            fingerprint=fingerprint,
        )
        host, port = gateway.address
        print(f"Gateway serving expansion API v1 on http://{host}:{port}")
        print(
            f"  routing: consistent hash of (method, {fingerprint}) over "
            f"{config.num_workers} shard(s); batches scatter-gather"
        )
        print(
            "  /v1/stats and /v1/healthz aggregate the whole fleet; "
            "/v1/dashboard joins it for `repro cluster top`"
        )
        if gateway.gate is not None:
            print(
                f"  front door: keyfile={config.keyfile or 'none'} "
                f"default-quota={config.default_quota or 'none'} "
                "(auth + quotas enforced at the gateway; workers run open "
                "behind it)"
            )
        try:
            gateway.serve_forever()
        except KeyboardInterrupt:
            print("\nshutting down cluster")
        finally:
            gateway.shutdown()
    finally:
        pool.stop()
        if scratch_dir is not None:
            shutil.rmtree(scratch_dir, ignore_errors=True)
    return 0


def _cmd_cluster_top(args: argparse.Namespace) -> int:
    """A refreshing terminal view of ``GET /v1/dashboard`` (fleet health,
    per-shard traffic and latency, cache hit rates, live fit progress)."""
    with ExpansionClient.connect(
        args.url, api_key=getattr(args, "api_key", None)
    ) as client:
        try:
            while True:
                frame = render_dashboard(client.dashboard())
                if not args.once:
                    # clear screen + home, like watch(1)/top(1).
                    print("\x1b[2J\x1b[H", end="")
                print(frame)
                if args.once:
                    return 0
                time.sleep(args.interval)
        except KeyboardInterrupt:
            print()
        except TransportError:
            # A down gateway is an expected condition for a monitoring
            # command, not a crash: one clean line, exit code 1.
            print(f"gateway unreachable at {args.url}", file=sys.stderr)
            return 1
    return 0


def _cmd_usage_report(args: argparse.Namespace) -> int:
    """Sum one or more JSONL usage ledgers into a per-tenant billing table."""
    totals: dict[str, dict] = {}
    for path in args.ledger:
        try:
            partial = read_ledger(path)
        except OSError as exc:
            print(f"cannot read ledger {path}: {exc}", file=sys.stderr)
            return 1
        for tenant, bucket in partial.items():
            merged = totals.setdefault(
                tenant,
                {
                    "requests": 0,
                    "cache_hits": 0,
                    "fits": 0,
                    "compute_seconds": 0.0,
                    "fit_seconds": 0.0,
                },
            )
            for key in merged:
                merged[key] += bucket.get(key, 0)
    if not totals:
        print("no usage records found")
        return 0
    width = max(len("TENANT"), max(len(tenant) for tenant in totals))
    print(
        f"{'TENANT':<{width}} {'REQUESTS':>9} {'CACHED':>7} {'FITS':>5} "
        f"{'COMPUTE(s)':>12} {'FIT(s)':>10}"
    )
    for tenant in sorted(totals):
        bucket = totals[tenant]
        print(
            f"{tenant:<{width}} {bucket['requests']:>9} "
            f"{bucket['cache_hits']:>7} {bucket['fits']:>5} "
            f"{bucket['compute_seconds']:>12.6f} {bucket['fit_seconds']:>10.6f}"
        )
    grand = sum(bucket["compute_seconds"] for bucket in totals.values())
    print(f"{'TOTAL':<{width}} {'':>9} {'':>7} {'':>5} {grand:>12.6f}")
    return 0


def _print_expand_response(response, args: argparse.Namespace) -> None:
    print(
        f"{response.method} on {response.query_id}: top-{response.top_k} "
        f"(cached={response.cached}, {response.latency_ms:.1f} ms)"
    )
    for rank, item in enumerate(response.ranking, start=response.offset + 1):
        print(f"  {rank:>3}. {item.name}  (id={item.entity_id}, score={item.score:.4f})")
    if args.json:
        write_json(args.json, to_jsonable(response))
        print(f"wrote JSON response to {Path(args.json).resolve()}")


def _cmd_query(args: argparse.Namespace) -> int:
    """One expansion through the client SDK: HTTP with --url, else in-process."""
    options = ExpandOptions(top_k=args.top_k, offset=args.offset, limit=args.limit)
    if args.url:
        if not args.query_id:
            raise SystemExit("--url mode needs an explicit --query-id")
        with ExpansionClient.connect(
            args.url, api_key=getattr(args, "api_key", None)
        ) as client:
            response = client.expand(
                args.method, query_id=args.query_id, options=options
            )
            _print_expand_response(response, args)
        return 0
    dataset = _load_or_build_dataset(args)
    config = _service_config(args)
    config.batch_wait_ms = 0.0  # one-shot CLI query: no batching window
    with ExpansionService(dataset, config=config) as service:
        client = ExpansionClient.in_process(service)
        response = client.expand(
            args.method,
            query_id=args.query_id or dataset.queries[0].query_id,
            options=options,
        )
        _print_expand_response(response, args)
    return 0


def _add_dataset_source_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default=None, help="directory of a saved dataset")
    parser.add_argument("--profile", default="small", choices=sorted(_PROFILES))
    parser.add_argument("--seed", type=int, default=13)


def _add_service_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cache-capacity", type=int, default=ServiceConfig.cache_capacity)
    parser.add_argument(
        "--cache-ttl",
        type=float,
        default=ServiceConfig.cache_ttl_seconds,
        help="result TTL in seconds; 0 disables expiry",
    )
    parser.add_argument("--max-batch-size", type=int, default=ServiceConfig.max_batch_size)
    parser.add_argument("--batch-wait-ms", type=float, default=ServiceConfig.batch_wait_ms)
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="artifact store directory: restore prefitted expanders from it "
        "and persist fresh fits into it",
    )
    parser.add_argument(
        "--slow-query-ms",
        type=float,
        default=None,
        metavar="MS",
        help="log one structured JSON line (with per-stage timings) for "
        "every expansion slower than this many milliseconds",
    )
    parser.add_argument(
        "--slow-query-log",
        default=None,
        metavar="FILE",
        help="also append slow-query lines to this file (rotated to a "
        "single .1 backup at --slow-query-max-bytes)",
    )
    parser.add_argument(
        "--slow-query-max-bytes",
        type=int,
        default=ServiceConfig.slow_query_max_bytes,
        metavar="BYTES",
        help="rotate the slow-query log file once it crosses this size",
    )
    parser.add_argument(
        "--exporter",
        default=None,
        choices=("statsd", "json"),
        help="background push-exporter shipping /v1/metrics telemetry to "
        "an external collector",
    )
    parser.add_argument(
        "--exporter-target",
        default=None,
        metavar="TARGET",
        help="exporter sink: host:port for statsd, an http(s) URL for json",
    )
    parser.add_argument(
        "--exporter-interval",
        type=float,
        default=ServiceConfig.exporter_interval_seconds,
        metavar="SECONDS",
        help="seconds between exporter flushes",
    )
    parser.add_argument(
        "--exporter-max-retries",
        type=int,
        default=ServiceConfig.exporter_max_retries,
        metavar="N",
        help="ship retries per batch before dropping it (drop-and-count)",
    )
    parser.add_argument(
        "--keyfile",
        default=None,
        metavar="FILE",
        help="JSON tenant keyfile enabling the multi-tenant front door "
        "(API keys, per-tenant quotas); hot-reloaded on change",
    )
    parser.add_argument(
        "--default-quota",
        default=None,
        metavar="RATE[:BURST]",
        help="token-bucket quota applied to every tenant without an explicit "
        "one (and to anonymous traffic when no keyfile is given), "
        "e.g. 50 or 50:100 requests/second",
    )
    parser.add_argument(
        "--admission-max-concurrent",
        type=int,
        default=None,
        metavar="N",
        help="cap concurrent expansions per worker; excess requests queue "
        "in two priority lanes (interactive preempts batch) and shed "
        "with a retryable 503 past --admission-queue-depth",
    )
    parser.add_argument(
        "--admission-queue-depth",
        type=int,
        default=ServiceConfig.admission_queue_depth,
        metavar="N",
        help="waiting requests allowed before load shedding kicks in",
    )
    parser.add_argument(
        "--admission-timeout",
        type=float,
        default=ServiceConfig.admission_timeout_seconds,
        metavar="SECONDS",
        help="longest a sheddable request waits for an admission slot",
    )
    parser.add_argument(
        "--trace-sample-rate",
        type=float,
        default=None,
        metavar="RATE",
        help="enable the trace collector, head-sampling this fraction of "
        "requests (0.0 keeps only slow/errored traces, 1.0 keeps all); "
        "kept traces are searchable at GET /v1/traces",
    )
    parser.add_argument(
        "--trace-buffer-size",
        type=int,
        default=ServiceConfig.trace_buffer_size,
        metavar="N",
        help="kept traces retained in memory (oldest evicted first)",
    )
    parser.add_argument(
        "--trace-sample-seed",
        type=int,
        default=None,
        metavar="SEED",
        help="seed the sampling RNG for deterministic keep/drop decisions",
    )
    parser.add_argument(
        "--trace-export",
        action="store_true",
        help="also ship kept traces' spans through the json exporter "
        "(OTLP-flavoured JSON; requires --exporter json)",
    )
    parser.add_argument(
        "--usage-metering",
        action="store_true",
        help="meter per-tenant compute-seconds (execute share, cache "
        "lookups, fit wall-time); summary under /v1/stats 'usage'",
    )
    parser.add_argument(
        "--usage-ledger",
        default=None,
        metavar="FILE",
        help="append per-tenant usage deltas to this JSONL ledger "
        "(implies --usage-metering; sum offline with `repro usage report`)",
    )
    parser.add_argument(
        "--usage-rollup-interval-seconds",
        type=float,
        default=ServiceConfig.usage_rollup_interval_seconds,
        metavar="SECONDS",
        help="seconds between ledger rollup writes",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="UltraWiki (Ultra-ESE) reproduction command-line interface",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    build = subparsers.add_parser("build-dataset", help="construct and optionally save a dataset")
    build.add_argument("--profile", default="small", choices=sorted(_PROFILES))
    build.add_argument("--seed", type=int, default=13)
    build.add_argument("--output", default=None, help="directory to save the dataset to")
    build.set_defaults(handler=_cmd_build_dataset)

    lister = subparsers.add_parser("list-experiments", help="list reproducible paper artefacts")
    lister.set_defaults(handler=_cmd_list_experiments)

    run = subparsers.add_parser("run-experiment", help="run one table/figure experiment")
    run.add_argument("experiment_id", help="e.g. table2, figure4")
    run.add_argument("--profile", default="small", choices=sorted(_PROFILES))
    run.add_argument("--seed", type=int, default=13)
    run.add_argument("--max-queries", type=int, default=40)
    run.add_argument("--genexpan-max-queries", type=int, default=20)
    run.add_argument("--json", default=None, help="path to write the raw output as JSON")
    run.set_defaults(handler=_cmd_run_experiment)

    fit = subparsers.add_parser(
        "fit", help="prefit methods and persist their artifacts for warm serving"
    )
    _add_dataset_source_arguments(fit)
    fit.add_argument("--store", required=True, metavar="DIR", help="artifact store directory")
    fit.add_argument(
        "--methods",
        nargs="*",
        default=[],
        metavar="METHOD",
        help="methods to prefit (default: every registered method)",
    )
    fit.add_argument(
        "--force", action="store_true", help="refit even when an artifact already exists"
    )
    fit.add_argument(
        "--substrates-only",
        action="store_true",
        help="prefit and persist only the shared substrates (co-occurrence "
        "embeddings, entity representations, causal LM) so later method "
        "fits — on this host or any worker sharing the store — skip them",
    )
    fit.set_defaults(handler=_cmd_fit)

    store = subparsers.add_parser("store", help="inspect or clean the artifact store")
    store_sub = store.add_subparsers(dest="store_command", required=True)
    store_ls = store_sub.add_parser(
        "ls", help="list persisted artifacts and shared substrates"
    )
    store_ls.add_argument("--store", required=True, metavar="DIR")
    store_ls.add_argument(
        "--human",
        action="store_true",
        help="human-readable sizes and per-substrate back-references",
    )
    store_ls.set_defaults(handler=_cmd_store_ls)
    store_gc = store_sub.add_parser("gc", help="remove stale artifacts")
    store_gc.add_argument("--store", required=True, metavar="DIR")
    store_gc.add_argument(
        "--keep-dataset",
        default=None,
        metavar="DIR",
        help="keep only artifacts matching this saved dataset's fingerprint",
    )
    store_gc.add_argument(
        "--keep-fingerprint",
        action="append",
        default=[],
        metavar="FP",
        help="additional fingerprint to keep (repeatable)",
    )
    store_gc.add_argument(
        "--max-age-hours",
        type=float,
        default=None,
        help="also remove artifacts older than this many hours",
    )
    store_gc.set_defaults(handler=_cmd_store_gc)

    serve = subparsers.add_parser("serve", help="start the online expansion HTTP service")
    _add_dataset_source_arguments(serve)
    _add_service_arguments(serve)
    serve.add_argument("--host", default=ServiceConfig.host)
    serve.add_argument("--port", type=int, default=ServiceConfig.port)
    serve.add_argument(
        "--warm",
        nargs="*",
        default=[],
        metavar="METHOD",
        help="methods to fit and pin before accepting traffic (e.g. retexpan)",
    )
    serve.add_argument(
        "--access-log",
        action="store_true",
        help="emit one structured JSON access-log line per request",
    )
    serve.set_defaults(handler=_cmd_serve)

    cluster = subparsers.add_parser(
        "cluster", help="multi-worker sharded serving behind a routing gateway"
    )
    cluster_sub = cluster.add_subparsers(dest="cluster_command", required=True)
    cluster_serve = cluster_sub.add_parser(
        "serve",
        help="spawn N serving workers and route v1 traffic through a gateway",
    )
    _add_dataset_source_arguments(cluster_serve)
    _add_service_arguments(cluster_serve)
    cluster_serve.add_argument(
        "--workers", type=int, default=ClusterConfig.num_workers,
        help="number of serving worker processes",
    )
    cluster_serve.add_argument("--worker-host", default=ClusterConfig.worker_host)
    cluster_serve.add_argument(
        "--worker-base-port", type=int, default=ClusterConfig.worker_base_port,
        help="workers listen on consecutive ports starting here",
    )
    cluster_serve.add_argument(
        "--host", default=ClusterConfig.gateway_host, help="gateway bind address"
    )
    cluster_serve.add_argument(
        "--port", type=int, default=ClusterConfig.gateway_port,
        help="gateway port (0 picks an ephemeral port)",
    )
    cluster_serve.add_argument(
        "--warm", nargs="*", default=[], metavar="METHOD",
        help="methods each worker fits and pins before accepting traffic",
    )
    cluster_serve.add_argument(
        "--access-log", action="store_true",
        help="workers emit structured JSON access-log lines",
    )
    cluster_serve.add_argument(
        "--gateway-access-log", action="store_true",
        help="the gateway emits one structured JSON access-log line per "
        "request (workers keep their own --access-log)",
    )
    cluster_serve.add_argument(
        "--gateway-exporter", default=None, choices=("statsd", "json"),
        help="push-exporter for the gateway's own metrics registry "
        "(workers ship theirs with --exporter)",
    )
    cluster_serve.add_argument(
        "--gateway-exporter-target", default=None, metavar="TARGET",
        help="gateway exporter sink: host:port (statsd) or URL (json)",
    )
    cluster_serve.add_argument(
        "--gateway-exporter-interval", type=float,
        default=ClusterConfig.gateway_exporter_interval_seconds,
        metavar="SECONDS", help="seconds between gateway exporter flushes",
    )
    cluster_serve.add_argument(
        "--gateway-cache-size", type=int, default=0, metavar="N",
        help="entries in the gateway-side result cache (0 disables; hits "
        "skip the worker round trip and carry X-Repro-Cache: gateway)",
    )
    cluster_serve.add_argument(
        "--gateway-cache-ttl", type=float,
        default=ClusterConfig.gateway_cache_ttl_seconds, metavar="SECONDS",
        help="TTL for gateway-cached results (default 60s)",
    )
    cluster_serve.add_argument(
        "--startup-timeout", type=float, default=120.0,
        help="seconds to wait for every worker's first healthy probe",
    )
    cluster_serve.set_defaults(handler=_cmd_cluster_serve)

    cluster_top = cluster_sub.add_parser(
        "top",
        help="live terminal dashboard over a running gateway's /v1/dashboard",
    )
    cluster_top.add_argument(
        "--url", required=True, metavar="URL", help="gateway base URL"
    )
    cluster_top.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between refreshes",
    )
    cluster_top.add_argument(
        "--once", action="store_true",
        help="render a single frame and exit (no screen clearing)",
    )
    cluster_top.add_argument(
        "--api-key", default=None, metavar="KEY",
        help="API key for a gateway running the multi-tenant front door",
    )
    cluster_top.set_defaults(handler=_cmd_cluster_top)

    usage = subparsers.add_parser(
        "usage", help="per-tenant usage metering (billing)"
    )
    usage_sub = usage.add_subparsers(dest="usage_command", required=True)
    usage_report = usage_sub.add_parser(
        "report",
        help="sum JSONL usage ledger(s) into a per-tenant compute-seconds table",
    )
    usage_report.add_argument(
        "--ledger",
        required=True,
        nargs="+",
        metavar="FILE",
        help="usage ledger path(s); cluster workers each write "
        "<ledger>.<port>, pass them all to bill the whole fleet",
    )
    usage_report.set_defaults(handler=_cmd_usage_report)

    query = subparsers.add_parser(
        "query", help="run one expansion request through the client SDK"
    )
    _add_dataset_source_arguments(query)
    _add_service_arguments(query)
    query.add_argument(
        "--url",
        default=None,
        metavar="URL",
        help="query a running server over HTTP instead of serving in-process "
        "(requires --query-id; dataset/service flags are ignored)",
    )
    query.add_argument("--method", default="retexpan", help="e.g. retexpan, genexpan, setexpan")
    query.add_argument("--query-id", default=None, help="dataset query id (default: first)")
    query.add_argument("--top-k", type=int, default=20)
    query.add_argument("--offset", type=int, default=0, help="pagination offset into the ranking")
    query.add_argument("--limit", type=int, default=None, help="page size (default: the rest)")
    query.add_argument("--json", default=None, help="path to write the response as JSON")
    query.add_argument(
        "--api-key", default=None, metavar="KEY",
        help="API key sent with --url against a server running the "
        "multi-tenant front door",
    )
    query.set_defaults(handler=_cmd_query)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
