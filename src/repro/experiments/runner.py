"""Shared experiment context.

Building the dataset and fitting the substrates dominates experiment wall
clock, so a single :class:`ExperimentContext` is shared by every table /
figure module: it owns the dataset, the :class:`SharedResources` cache, a
method factory covering every compared method, and evaluation helpers with a
query budget so the whole harness completes on a laptop CPU.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.baselines import CGExpan, CaSE, GPT4Expander, ProbExpan, SetExpan
from repro.config import DatasetConfig, GenExpanConfig, RetExpanConfig
from repro.core.base import Expander
from repro.core.resources import SharedResources
from repro.dataset.builder import build_dataset
from repro.dataset.ultrawiki import UltraWikiDataset
from repro.eval.evaluator import EvaluationReport, Evaluator
from repro.exceptions import ConfigurationError
from repro.genexpan import GenExpan
from repro.retexpan import RetExpan
from repro.types import Query


class ExperimentContext:
    """Holds the dataset, shared resources, and evaluation budget."""

    def __init__(
        self,
        dataset: UltraWikiDataset | None = None,
        dataset_config: DatasetConfig | None = None,
        max_queries: int | None = 40,
        genexpan_max_queries: int | None = 20,
        seed: int = 7,
    ):
        """``max_queries`` bounds retrieval-style evaluations;
        ``genexpan_max_queries`` bounds generation-style evaluations, which are
        slower because of per-query beam search."""
        self.dataset = dataset or build_dataset(dataset_config or DatasetConfig.small())
        self.resources = SharedResources(self.dataset)
        self.max_queries = max_queries
        self.genexpan_max_queries = genexpan_max_queries
        self.seed = seed
        self._evaluators: dict[tuple, Evaluator] = {}
        self._reports: dict[tuple[str, tuple], EvaluationReport] = {}

    # -- evaluators -----------------------------------------------------------------
    def evaluator(
        self,
        max_queries: int | None = None,
        query_filter: Callable[[Query], bool] | None = None,
        filter_key: str = "",
    ) -> Evaluator:
        """A (cached) evaluator with the given budget and query filter."""
        key = (max_queries, filter_key)
        if query_filter is not None and not filter_key:
            raise ConfigurationError("query_filter requires a filter_key for caching")
        if key not in self._evaluators:
            self._evaluators[key] = Evaluator(
                self.dataset,
                max_queries=max_queries,
                query_filter=query_filter,
                seed=self.seed,
            )
        return self._evaluators[key]

    # -- method factory -----------------------------------------------------------------
    def make_method(self, name: str) -> Expander:
        """Instantiate a method by its paper name (not yet fitted)."""
        resources = self.resources
        factories: dict[str, Callable[[], Expander]] = {
            "SetExpan": lambda: SetExpan(),
            "CaSE": lambda: CaSE(resources=resources),
            "CGExpan": lambda: CGExpan(resources=resources),
            "ProbExpan": lambda: ProbExpan(resources=resources),
            "ProbExpan + Neg Rerank": lambda: ProbExpan(
                resources=resources, use_negative_rerank=True
            ),
            "GPT4": lambda: GPT4Expander(resources=resources),
            "RetExpan": lambda: RetExpan(resources=resources),
            "RetExpan + Contrast": lambda: RetExpan(
                RetExpanConfig(use_contrastive=True),
                resources=resources,
                contrastive_queries=self._contrastive_queries(),
            ),
            "RetExpan - Neg Rerank": lambda: RetExpan(
                RetExpanConfig(use_negative_rerank=False),
                resources=resources,
                name="RetExpan - Neg Rerank",
            ),
            "RetExpan - Entity prediction": lambda: RetExpan(
                RetExpanConfig(use_entity_prediction=False),
                resources=resources,
                name="RetExpan - Entity prediction",
            ),
            "GenExpan": lambda: GenExpan(resources=resources),
            "GenExpan + CoT": lambda: GenExpan(
                GenExpanConfig(cot_mode="gen_class_gen_pos"), resources=resources
            ),
            "GenExpan - Neg Rerank": lambda: GenExpan(
                GenExpanConfig(use_negative_rerank=False),
                resources=resources,
                name="GenExpan - Neg Rerank",
            ),
            "GenExpan - Prefix constrain": lambda: GenExpan(
                GenExpanConfig(use_prefix_constraint=False),
                resources=resources,
                name="GenExpan - Prefix constrain",
            ),
            "GenExpan - Further pretrain": lambda: GenExpan(
                GenExpanConfig(use_further_pretrain=False),
                resources=resources,
                name="GenExpan - Further pretrain",
            ),
        }
        if name not in factories:
            raise ConfigurationError(f"unknown method {name!r}")
        return factories[name]()

    def make_genexpan_cot(self, cot_mode: str, name: str) -> Expander:
        """A GenExpan variant with an explicit chain-of-thought mode (Table VIII)."""
        return GenExpan(
            GenExpanConfig(cot_mode=cot_mode), resources=self.resources, name=name
        )

    def _contrastive_queries(self) -> list[Query]:
        """Queries used for contrastive-data mining (bounded by the budget)."""
        return self.evaluator(max_queries=self.max_queries).queries

    # -- evaluation helpers -----------------------------------------------------------------
    def budget_for(self, method_name: str) -> int | None:
        """Query budget for a method (generation methods get the smaller budget)."""
        if method_name.startswith("GenExpan"):
            return self.genexpan_max_queries
        return self.max_queries

    def evaluate_method(
        self, method_name: str, max_queries: int | None = None
    ) -> EvaluationReport:
        """Evaluate a method by name, caching the report."""
        budget = max_queries if max_queries is not None else self.budget_for(method_name)
        key = (method_name, (budget,))
        if key not in self._reports:
            expander = self.make_method(method_name).fit(self.dataset)
            evaluator = self.evaluator(max_queries=budget)
            self._reports[key] = evaluator.evaluate(expander)
        return self._reports[key]

    def evaluate_expander(
        self,
        expander: Expander,
        max_queries: int | None = None,
        query_filter: Callable[[Query], bool] | None = None,
        filter_key: str = "",
    ) -> EvaluationReport:
        """Evaluate an already-constructed expander (no caching)."""
        if not expander.is_fitted:
            expander.fit(self.dataset)
        evaluator = self.evaluator(
            max_queries=max_queries, query_filter=query_filter, filter_key=filter_key
        )
        return evaluator.evaluate(expander)

    # -- query grouping helpers -------------------------------------------------------------
    def attribute_equality_of(self, query: Query) -> str:
        """"same" when A_pos and A_neg constrain the same attributes, else "diff"."""
        ultra = self.dataset.ultra_class(query.class_id)
        return "same" if ultra.same_attributes else "diff"

    def attribute_cardinality_of(self, query: Query) -> tuple[int, int]:
        """(|A_pos|, |A_neg|) of the query's class (Table VI grouping)."""
        return self.dataset.ultra_class(query.class_id).attribute_cardinality


def metric_rows(
    reports: Sequence[EvaluationReport],
    metric_types: Sequence[str] = ("pos", "neg", "comb"),
    cutoffs: Sequence[int] = (10, 20, 50, 100),
) -> list[dict]:
    """Paper-style rows (method × metric type) from a list of reports."""
    rows = []
    for metric_type in metric_types:
        for report in reports:
            row = {"metric": metric_type.capitalize(), "method": report.method}
            for k in cutoffs:
                row[f"MAP@{k}"] = report.value(metric_type, "map", k)
            for k in cutoffs:
                row[f"P@{k}"] = report.value(metric_type, "p", k)
            row["Avg"] = report.average(metric_type)
            rows.append(row)
    return rows
