"""Table I — comparison of ESE datasets.

Reproduces the dataset-statistics comparison: prior ESE benchmarks (numbers
quoted from the paper), the original UltraWiki, and the synthetic UltraWiki
built by this repository.
"""

from __future__ import annotations

from repro.dataset.analysis import compute_statistics, dataset_comparison_table
from repro.eval.reporting import format_table
from repro.experiments.runner import ExperimentContext


def run(context: ExperimentContext) -> dict:
    """Return the comparison rows and this dataset's detailed statistics."""
    rows = dataset_comparison_table(context.dataset)
    stats = compute_statistics(context.dataset)
    return {
        "experiment": "table1",
        "rows": rows,
        "statistics": stats.to_dict(),
        "text": format_table(rows),
    }
