"""Table III — ablation of RetExpan and GenExpan modules.

Removes one module at a time and reports CombMAP@K:

* RetExpan − Entity prediction (the auxiliary masked-entity prediction task);
* GenExpan − Prefix constrain (unconstrained decoding);
* GenExpan − Further pretrain (no continued pre-training on the corpus).

The expected shape: every ablation lowers the average, with the prefix
constraint being by far the most damaging for GenExpan.
"""

from __future__ import annotations

from repro.eval.reporting import format_table
from repro.experiments.runner import ExperimentContext

#: paper CombMAP averages (@10/20/50/100) for reference.
PAPER_COMB_MAP_AVG = {
    "RetExpan": 64.75,
    "RetExpan - Entity prediction": 62.00,
    "GenExpan": 67.90,
    "GenExpan - Prefix constrain": 56.53,
    "GenExpan - Further pretrain": 66.18,
}

METHODS = (
    "RetExpan",
    "RetExpan - Entity prediction",
    "GenExpan",
    "GenExpan - Prefix constrain",
    "GenExpan - Further pretrain",
)


def run(context: ExperimentContext) -> dict:
    rows = []
    comb_map_avg = {}
    for name in METHODS:
        report = context.evaluate_method(name)
        row = {"method": name}
        for k in (10, 20, 50, 100):
            row[f"MAP@{k}"] = report.value("comb", "map", k)
        row["Avg"] = report.average_map("comb")
        comb_map_avg[name] = row["Avg"]
        rows.append(row)
    return {
        "experiment": "table3",
        "rows": rows,
        "comb_map_avg": comb_map_avg,
        "paper_comb_map_avg": dict(PAPER_COMB_MAP_AVG),
        "text": format_table(rows),
    }
