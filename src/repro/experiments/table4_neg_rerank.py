"""Table IV — effect of entity re-ranking with negative seed entities.

For ProbExpan (+ Neg Rerank), RetExpan (− Neg Rerank) and GenExpan
(− Neg Rerank), the experiment reports Pos / Neg / Comb metrics and the
delta rows.  The paper's shape: adding the negative-seed re-ranking raises
Pos and Comb while lowering Neg intrusion, for every framework.
"""

from __future__ import annotations

from repro.eval.reporting import format_table
from repro.experiments.runner import ExperimentContext, metric_rows

#: (with re-ranking, without re-ranking) method pairs.
PAIRS = (
    ("ProbExpan + Neg Rerank", "ProbExpan"),
    ("RetExpan", "RetExpan - Neg Rerank"),
    ("GenExpan", "GenExpan - Neg Rerank"),
)


def run(context: ExperimentContext) -> dict:
    rows: list[dict] = []
    deltas: dict[str, dict[str, float]] = {}
    for with_rerank, without_rerank in PAIRS:
        report_with = context.evaluate_method(with_rerank)
        report_without = context.evaluate_method(without_rerank)
        rows.extend(metric_rows([report_with, report_without]))
        deltas[with_rerank] = {
            metric: report_with.average(metric) - report_without.average(metric)
            for metric in ("pos", "neg", "comb")
        }
    return {
        "experiment": "table4",
        "rows": rows,
        "deltas": deltas,
        "text": format_table(rows),
    }
