"""Experiment harness: one module per paper table / figure."""

from repro.experiments.runner import ExperimentContext
from repro.experiments.registry import EXPERIMENTS, experiment_by_id

__all__ = ["ExperimentContext", "EXPERIMENTS", "experiment_by_id"]
