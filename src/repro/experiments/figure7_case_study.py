"""Figure 7 — case study of GenExpan vs GenExpan + CoT.

For a single query, the figure lists the two methods' ranked outputs and
annotates each entity as a positive target (+++), a negative target (- - -),
or an irrelevant entity of the same fine-grained class (!!!).  This module
produces the same annotated listings for the synthetic dataset.
"""

from __future__ import annotations

from repro.experiments.runner import ExperimentContext
from repro.types import Query


def _annotate(context: ExperimentContext, query: Query, entity_id: int) -> str:
    dataset = context.dataset
    ultra = dataset.ultra_class(query.class_id)
    if entity_id in ultra.positive_entity_ids:
        return "+++"
    if entity_id in ultra.negative_entity_ids:
        return "---"
    entity = dataset.entity(entity_id)
    if entity.fine_class == ultra.fine_class:
        return "!!!"
    return "   "


def run(
    context: ExperimentContext,
    query: Query | None = None,
    top_k: int = 35,
) -> dict:
    """Annotated top-``top_k`` listings for GenExpan and GenExpan + CoT."""
    dataset = context.dataset
    query = query or context.evaluator(max_queries=context.genexpan_max_queries).queries[0]
    ultra = dataset.ultra_class(query.class_id)

    listings: dict[str, list[dict]] = {}
    for method_name in ("GenExpan", "GenExpan + CoT"):
        expander = context.make_method(method_name).fit(dataset)
        result = expander.expand(query, top_k=top_k)
        listing = []
        for rank, entity_id in enumerate(result.entity_ids(), start=1):
            listing.append(
                {
                    "rank": rank,
                    "entity": dataset.entity(entity_id).name,
                    "annotation": _annotate(context, query, entity_id),
                }
            )
        listings[method_name] = listing

    lines = [
        f"query: {query.query_id}",
        f"fine class: {ultra.fine_class}",
        f"positive attributes: {dict(ultra.positive_assignment)}",
        f"negative attributes: {dict(ultra.negative_assignment)}",
        "positive seeds: "
        + ", ".join(dataset.entity(eid).name for eid in query.positive_seed_ids),
        "negative seeds: "
        + ", ".join(dataset.entity(eid).name for eid in query.negative_seed_ids),
        "",
    ]
    for method_name, listing in listings.items():
        lines.append(f"== {method_name} ==")
        for item in listing:
            lines.append(f"{item['rank']:>3} {item['entity']:<40} {item['annotation']}")
        lines.append("")
    return {
        "experiment": "figure7",
        "query_id": query.query_id,
        "class_id": query.class_id,
        "listings": listings,
        "text": "\n".join(lines),
    }
