"""Registry mapping experiment ids to their runner functions."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.exceptions import ConfigurationError
from repro.experiments import (
    figure4_heatmap,
    figure7_case_study,
    table1_dataset,
    table2_main,
    table3_ablation_modules,
    table4_neg_rerank,
    table5_attribute_overlap,
    table6_attribute_counts,
    table7_contrastive_ablation,
    table8_cot,
)


@dataclass(frozen=True)
class ExperimentSpec:
    """One reproducible paper artefact."""

    experiment_id: str
    title: str
    runner: Callable
    bench_target: str


EXPERIMENTS: tuple[ExperimentSpec, ...] = (
    ExperimentSpec(
        "table1",
        "Comparison of ESE datasets",
        table1_dataset.run,
        "benchmarks/test_table1_dataset_stats.py",
    ),
    ExperimentSpec(
        "table2",
        "Main results (all methods, Pos/Neg/Comb MAP & P)",
        table2_main.run,
        "benchmarks/test_table2_main_results.py",
    ),
    ExperimentSpec(
        "table3",
        "Module ablations for RetExpan and GenExpan",
        table3_ablation_modules.run,
        "benchmarks/test_table3_module_ablation.py",
    ),
    ExperimentSpec(
        "table4",
        "Effect of negative-seed entity re-ranking",
        table4_neg_rerank.run,
        "benchmarks/test_table4_neg_rerank.py",
    ),
    ExperimentSpec(
        "table5",
        "Identical vs different positive/negative attributes",
        table5_attribute_overlap.run,
        "benchmarks/test_table5_attr_overlap.py",
    ),
    ExperimentSpec(
        "table6",
        "Attribute cardinality (|Apos|, |Aneg|) analysis",
        table6_attribute_counts.run,
        "benchmarks/test_table6_attr_counts.py",
    ),
    ExperimentSpec(
        "table7",
        "Contrastive-learning training-data ablation",
        table7_contrastive_ablation.run,
        "benchmarks/test_table7_contrastive_ablation.py",
    ),
    ExperimentSpec(
        "table8",
        "Chain-of-thought reasoning depth and precision",
        table8_cot.run,
        "benchmarks/test_table8_cot.py",
    ),
    ExperimentSpec(
        "figure4",
        "Semantic-similarity heatmap of ultra-fine-grained classes",
        figure4_heatmap.run,
        "benchmarks/test_figure4_heatmap.py",
    ),
    ExperimentSpec(
        "figure7",
        "Case study: GenExpan vs GenExpan + CoT",
        figure7_case_study.run,
        "benchmarks/test_figure7_case_study.py",
    ),
)


def experiment_by_id(experiment_id: str) -> ExperimentSpec:
    """Look up an experiment spec by id (e.g. ``"table2"``)."""
    for spec in EXPERIMENTS:
        if spec.experiment_id == experiment_id:
            return spec
    raise ConfigurationError(f"unknown experiment {experiment_id!r}")
