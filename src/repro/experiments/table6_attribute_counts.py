"""Table VI — semantic classes with different numbers of attributes.

Groups queries by the attribute cardinality (|A_pos|, |A_neg|) of their
class — (1,1), (1,2) and (2,1) — and reports RetExpan's Pos / Neg / Comb
MAP.  Paper shape: more positive attributes depress the Pos metrics, more
negative attributes depress the Neg metrics (fewer matching targets), while
Comb stays in a similar band.
"""

from __future__ import annotations

from repro.eval.reporting import format_table
from repro.experiments.runner import ExperimentContext

CARDINALITIES = ((1, 1), (1, 2), (2, 1))


def run(context: ExperimentContext) -> dict:
    expander = context.make_method("RetExpan").fit(context.dataset)
    evaluator = context.evaluator(max_queries=context.max_queries)
    grouped = evaluator.split_reports(
        expander, lambda query: str(context.attribute_cardinality_of(query))
    )
    rows: list[dict] = []
    comb_map_avg: dict[str, float] = {}
    for cardinality in CARDINALITIES:
        label = str(cardinality)
        if label not in grouped:
            continue
        report = grouped[label]
        row = {"(|Apos|, |Aneg|)": label, "num_queries": report.num_queries}
        for metric in ("pos", "neg", "comb"):
            for k in (10, 20, 50, 100):
                row[f"{metric.capitalize()}MAP@{k}"] = report.value(metric, "map", k)
            row[f"{metric.capitalize()}Avg"] = report.average_map(metric)
        rows.append(row)
        comb_map_avg[label] = report.average_map("comb")
    return {
        "experiment": "table6",
        "rows": rows,
        "comb_map_avg": comb_map_avg,
        "text": format_table(rows),
    }
