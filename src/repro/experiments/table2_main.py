"""Table II — main results on UltraWiki.

Evaluates every compared method (probability-based, retrieval-based,
generation-based, and the proposed RetExpan / GenExpan with their
enhancement strategies) on Pos / Neg / Comb MAP and P at K ∈ {10, 20, 50, 100}.

The paper's headline shapes that this experiment should reproduce:

* the proposed RetExpan and GenExpan beat every baseline on the Comb metrics;
* the enhancement strategies (contrastive learning, chain-of-thought) add
  further gains on top of their base frameworks;
* the statistical baselines (SetExpan, CaSE) score low on Pos *and* Neg
  because they fail to recall the fine-grained class at all.
"""

from __future__ import annotations

from repro.eval.reporting import format_table
from repro.experiments.runner import ExperimentContext, metric_rows

#: paper Table II Comb-metric row averages, used for shape comparison.
PAPER_COMB_AVG = {
    "SetExpan": 54.70,
    "CaSE": 55.77,
    "CGExpan": 56.41,
    "ProbExpan": 57.04,
    "GPT4": 65.28,
    "RetExpan": 65.36,
    "RetExpan + Contrast": 67.59,
    "GenExpan": 69.10,
    "GenExpan + CoT": 69.84,
}

#: every method of the main table, in paper order.
METHODS = (
    "SetExpan",
    "CaSE",
    "CGExpan",
    "ProbExpan",
    "GPT4",
    "RetExpan",
    "RetExpan + Contrast",
    "GenExpan",
    "GenExpan + CoT",
)


def run(context: ExperimentContext, methods: tuple[str, ...] = METHODS) -> dict:
    """Run the main comparison and return paper-style rows."""
    reports = [context.evaluate_method(name) for name in methods]
    rows = metric_rows(reports)
    comb_avg = {report.method: report.average("comb") for report in reports}
    return {
        "experiment": "table2",
        "rows": rows,
        "comb_avg": comb_avg,
        "paper_comb_avg": {m: PAPER_COMB_AVG[m] for m in methods if m in PAPER_COMB_AVG},
        "text": format_table(rows),
    }
