"""Table V — identical vs different positive / negative attributes.

Splits queries by whether ``A_pos`` and ``A_neg`` constrain the same
attribute (seed roles: emphasis / disambiguation) or different attributes
(seed roles: expressing "unwanted" semantics), and compares RetExpan with
and without contrastive learning on each split.

Paper shape: the same-attribute split is easier (higher Comb), and the
contrastive gain is larger on that split.
"""

from __future__ import annotations

from repro.eval.reporting import format_table
from repro.experiments.runner import ExperimentContext

METHODS = ("RetExpan", "RetExpan + Contrast")


def run(context: ExperimentContext) -> dict:
    rows: list[dict] = []
    summary: dict[str, dict[str, float]] = {}
    evaluator = context.evaluator(max_queries=context.max_queries)
    for method_name in METHODS:
        expander = context.make_method(method_name).fit(context.dataset)
        grouped = evaluator.split_reports(expander, context.attribute_equality_of)
        for group in ("same", "diff"):
            if group not in grouped:
                continue
            report = grouped[group]
            row = {"group": f"Apos {'=' if group == 'same' else '!='} Aneg", "method": method_name}
            for metric in ("pos", "neg", "comb"):
                for k in (10, 20, 50, 100):
                    row[f"{metric.capitalize()}MAP@{k}"] = report.value(metric, "map", k)
                row[f"{metric.capitalize()}Avg"] = report.average_map(metric)
            rows.append(row)
            summary.setdefault(group, {})[method_name] = report.average_map("comb")
    return {
        "experiment": "table5",
        "rows": rows,
        "comb_map_avg": summary,
        "text": format_table(rows),
    }
