"""Table VII — ablation of the contrastive-learning training data.

Starting from RetExpan + Contrast, removes in turn:

* hard negatives (pairs across L_pos × L_neg);
* normal negatives (pairs against other-class entities L0');
* positives (pairs within L_pos and within L_neg).

Paper shape: every removal lowers CombMAP, with the hard negatives
contributing the most.
"""

from __future__ import annotations

from repro.config import ContrastiveConfig, RetExpanConfig
from repro.eval.reporting import format_table
from repro.experiments.runner import ExperimentContext
from repro.retexpan import RetExpan

#: (display name, contrastive-config overrides)
VARIANTS = (
    ("RetExpan", None),
    ("RetExpan + Contrast", {}),
    ("- Neg from (Lpos, Lneg)", {"use_hard_negatives": False}),
    ("- Neg from (Lpos, L0') & (Lneg, L0')", {"use_normal_negatives": False}),
    ("- Pos from (Lpos, Lpos) & (Lneg, Lneg)", {"use_intra_positive_pairs": False}),
)


def run(context: ExperimentContext) -> dict:
    rows: list[dict] = []
    comb_map_avg: dict[str, float] = {}
    evaluator = context.evaluator(max_queries=context.max_queries)
    for name, overrides in VARIANTS:
        if overrides is None:
            expander = context.make_method("RetExpan").fit(context.dataset)
        else:
            contrastive = ContrastiveConfig(**overrides)
            config = RetExpanConfig(use_contrastive=True, contrastive=contrastive)
            expander = RetExpan(
                config,
                resources=context.resources,
                contrastive_queries=evaluator.queries,
                name=name,
            ).fit(context.dataset)
        report = evaluator.evaluate(expander)
        row = {"method": name}
        for metric in ("pos", "neg", "comb"):
            for k in (10, 20, 50, 100):
                row[f"{metric.capitalize()}MAP@{k}"] = report.value(metric, "map", k)
            row[f"{metric.capitalize()}Avg"] = report.average_map(metric)
        comb_map_avg[name] = report.average_map("comb")
        rows.append(row)
    return {
        "experiment": "table7",
        "rows": rows,
        "comb_map_avg": comb_map_avg,
        "text": format_table(rows),
    }
