"""Figure 4 — semantic-similarity heatmap of ultra-fine-grained classes.

Each row/column of the heatmap is the averaged embedding of the ground-truth
positive entities of one ultra-fine-grained class; cell values are pairwise
cosine similarities.  The paper's qualitative claim is a block-diagonal
structure: classes derived from the same fine-grained class are much more
similar to each other than to classes from other fine-grained classes.

The harness reports the full matrix plus the intra-vs-inter block summary so
that the shape can be asserted numerically.
"""

from __future__ import annotations

from repro.dataset.analysis import class_similarity_matrix, intra_inter_similarity
from repro.experiments.runner import ExperimentContext


def _proportional_class_sample(context: ExperimentContext, max_classes: int) -> list[str]:
    """Round-robin over fine-grained classes so the sample covers all of them,
    mirroring the paper's proportional sampling down to 80 classes."""
    by_fine: dict[str, list[str]] = {}
    for class_id in sorted(context.dataset.ultra_classes):
        fine = context.dataset.ultra_class(class_id).fine_class
        by_fine.setdefault(fine, []).append(class_id)
    sampled: list[str] = []
    index = 0
    while len(sampled) < max_classes:
        progressed = False
        for fine in sorted(by_fine):
            bucket = by_fine[fine]
            if index < len(bucket) and len(sampled) < max_classes:
                sampled.append(bucket[index])
                progressed = True
        if not progressed:
            break
        index += 1
    return sampled


def run(context: ExperimentContext, max_classes: int = 80) -> dict:
    representations = context.resources.entity_representations(trained=True)
    embeddings = representations.hidden
    class_ids, matrix = class_similarity_matrix(
        context.dataset,
        embeddings,
        class_ids=_proportional_class_sample(context, max_classes),
        max_classes=max_classes,
    )
    summary = intra_inter_similarity(context.dataset, embeddings)
    fine_classes = [context.dataset.ultra_class(cid).fine_class for cid in class_ids]
    return {
        "experiment": "figure4",
        "class_ids": class_ids,
        "fine_classes": fine_classes,
        "matrix": matrix.tolist(),
        "intra_class_similarity": summary["intra"],
        "inter_class_similarity": summary["inter"],
        "text": (
            f"classes={len(class_ids)} "
            f"intra={summary['intra']:.3f} inter={summary['inter']:.3f}"
        ),
    }
