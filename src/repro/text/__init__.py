"""Text substrate: tokenisation, vocabularies, prefix trees, and BM25 retrieval."""

from repro.text.tokenizer import WordTokenizer
from repro.text.vocab import Vocabulary
from repro.text.prefix_tree import PrefixTree
from repro.text.bm25 import BM25Index
from repro.text.inverted_index import InvertedIndex

__all__ = [
    "WordTokenizer",
    "Vocabulary",
    "PrefixTree",
    "BM25Index",
    "InvertedIndex",
]
