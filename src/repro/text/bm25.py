"""BM25 ranking over a document collection.

The UltraWiki construction pipeline uses BM25 search to mine hard negative
entities that are textually close to the target entities (Section IV-B,
"Difficulty of UltraWiki").  The same index is reused by the CaSE baseline
for its lexical-feature component.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.text.inverted_index import InvertedIndex


class BM25Index:
    """Okapi BM25 with the standard k1/b parameterisation."""

    def __init__(self, k1: float = 1.5, b: float = 0.75):
        if k1 < 0:
            raise ValueError("k1 must be non-negative")
        if not 0.0 <= b <= 1.0:
            raise ValueError("b must be in [0, 1]")
        self.k1 = k1
        self.b = b
        self._index = InvertedIndex()

    def add_document(self, doc_id: int, tokens: Sequence[str]) -> None:
        self._index.add_document(doc_id, tokens)

    @property
    def num_documents(self) -> int:
        return self._index.num_documents

    def idf(self, token: str) -> float:
        """BM25 idf with the +1 floor that keeps scores non-negative."""
        n = self._index.num_documents
        df = self._index.document_frequency(token)
        return math.log(1.0 + (n - df + 0.5) / (df + 0.5))

    def score(self, query_tokens: Sequence[str], doc_id: int) -> float:
        """BM25 score of ``doc_id`` for the query."""
        avg_len = self._index.average_document_length or 1.0
        doc_len = self._index.document_length(doc_id)
        total = 0.0
        for token in query_tokens:
            tf = self._index.postings(token).get(doc_id, 0)
            if tf == 0:
                continue
            idf = self.idf(token)
            denom = tf + self.k1 * (1.0 - self.b + self.b * doc_len / avg_len)
            total += idf * tf * (self.k1 + 1.0) / denom
        return total

    def search(self, query_tokens: Sequence[str], top_k: int = 10) -> list[tuple[int, float]]:
        """Return the top-``top_k`` (doc_id, score) pairs for the query.

        Only documents sharing at least one query token are scored.
        """
        candidates: set[int] = set()
        for token in query_tokens:
            candidates |= self._index.documents_containing(token)
        scored = [(doc_id, self.score(query_tokens, doc_id)) for doc_id in candidates]
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        return scored[:top_k]
