"""Token vocabulary with special tokens and frequency-based construction."""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator

from repro.exceptions import VocabularyError

PAD_TOKEN = "[PAD]"
UNK_TOKEN = "[UNK]"
MASK_TOKEN = "[MASK]"
BOS_TOKEN = "[BOS]"
EOS_TOKEN = "[EOS]"

SPECIAL_TOKENS = (PAD_TOKEN, UNK_TOKEN, MASK_TOKEN, BOS_TOKEN, EOS_TOKEN)


class Vocabulary:
    """A bidirectional token ↔ id mapping.

    Ids 0..4 are reserved for the special tokens; the remaining ids are
    assigned by descending frequency (ties broken alphabetically) so the
    mapping is deterministic for a given corpus.
    """

    def __init__(self, tokens: Iterable[str] = ()):
        self._token_to_id: dict[str, int] = {}
        self._id_to_token: list[str] = []
        for token in SPECIAL_TOKENS:
            self._add(token)
        for token in tokens:
            self.add(token)

    # -- construction --------------------------------------------------------
    def _add(self, token: str) -> int:
        token_id = len(self._id_to_token)
        self._token_to_id[token] = token_id
        self._id_to_token.append(token)
        return token_id

    def add(self, token: str) -> int:
        """Add ``token`` if absent; return its id."""
        existing = self._token_to_id.get(token)
        if existing is not None:
            return existing
        return self._add(token)

    @classmethod
    def from_token_lists(
        cls, token_lists: Iterable[list[str]], min_count: int = 1, max_size: int | None = None
    ) -> "Vocabulary":
        """Build a vocabulary from an iterable of token lists.

        Tokens appearing fewer than ``min_count`` times are dropped; if
        ``max_size`` is given only the most frequent tokens are kept.
        """
        counts: Counter[str] = Counter()
        for tokens in token_lists:
            counts.update(tokens)
        items = [(t, c) for t, c in counts.items() if c >= min_count and t not in SPECIAL_TOKENS]
        items.sort(key=lambda pair: (-pair[1], pair[0]))
        if max_size is not None:
            items = items[: max(0, max_size - len(SPECIAL_TOKENS))]
        return cls(token for token, _ in items)

    # -- lookup ---------------------------------------------------------------
    def id_of(self, token: str) -> int:
        """Id of ``token``, or the [UNK] id when unknown."""
        return self._token_to_id.get(token, self._token_to_id[UNK_TOKEN])

    def strict_id_of(self, token: str) -> int:
        """Id of ``token``; raises :class:`VocabularyError` when unknown."""
        try:
            return self._token_to_id[token]
        except KeyError as exc:
            raise VocabularyError(f"unknown token {token!r}") from exc

    def token_of(self, token_id: int) -> str:
        try:
            return self._id_to_token[token_id]
        except IndexError as exc:
            raise VocabularyError(f"unknown token id {token_id}") from exc

    def encode(self, tokens: Iterable[str]) -> list[int]:
        return [self.id_of(t) for t in tokens]

    def decode(self, token_ids: Iterable[int]) -> list[str]:
        return [self.token_of(i) for i in token_ids]

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def __len__(self) -> int:
        return len(self._id_to_token)

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_to_token)

    @property
    def pad_id(self) -> int:
        return self._token_to_id[PAD_TOKEN]

    @property
    def unk_id(self) -> int:
        return self._token_to_id[UNK_TOKEN]

    @property
    def mask_id(self) -> int:
        return self._token_to_id[MASK_TOKEN]

    @property
    def bos_id(self) -> int:
        return self._token_to_id[BOS_TOKEN]

    @property
    def eos_id(self) -> int:
        return self._token_to_id[EOS_TOKEN]
