"""A small deterministic word tokenizer.

The synthetic corpus is plain English-like text, so a rule-based tokenizer
(lower-casing, punctuation splitting) is sufficient and keeps the whole
pipeline dependency-free.  The special ``[MASK]`` token used by the
masked-entity context encoder survives tokenisation unchanged.
"""

from __future__ import annotations

import re

MASK_TOKEN = "[MASK]"

_TOKEN_RE = re.compile(r"\[MASK\]|[A-Za-z0-9]+(?:'[a-z]+)?|[^\sA-Za-z0-9]")


class WordTokenizer:
    """Tokenise text into lower-cased word tokens.

    ``[MASK]`` is preserved verbatim; all other tokens are lower-cased.
    Punctuation can optionally be dropped (the default), because the context
    encoder gains nothing from commas and periods.
    """

    def __init__(self, keep_punctuation: bool = False):
        self.keep_punctuation = keep_punctuation

    def tokenize(self, text: str) -> list[str]:
        """Return the token list for ``text``."""
        tokens: list[str] = []
        for match in _TOKEN_RE.finditer(text):
            token = match.group(0)
            if token == MASK_TOKEN:
                tokens.append(token)
                continue
            if not self.keep_punctuation and not token[0].isalnum():
                continue
            tokens.append(token.lower())
        return tokens

    def tokenize_entity_name(self, name: str) -> list[str]:
        """Tokenise an entity surface form (used by the prefix tree)."""
        return [t for t in self.tokenize(name) if t != MASK_TOKEN]

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"WordTokenizer(keep_punctuation={self.keep_punctuation})"
