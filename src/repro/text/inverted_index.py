"""A simple inverted index from token to document ids.

Used by the statistical baselines (SetExpan, CaSE) to retrieve context
features and by BM25 as its posting-list store.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Iterable, Mapping, Sequence


class InvertedIndex:
    """Maps tokens to the documents (and term frequencies) containing them."""

    def __init__(self):
        self._postings: dict[str, dict[int, int]] = defaultdict(dict)
        self._doc_lengths: dict[int, int] = {}

    def add_document(self, doc_id: int, tokens: Sequence[str]) -> None:
        """Index ``tokens`` under ``doc_id`` (re-adding a doc id overwrites it)."""
        if doc_id in self._doc_lengths:
            self.remove_document(doc_id)
        counts = Counter(tokens)
        for token, count in counts.items():
            self._postings[token][doc_id] = count
        self._doc_lengths[doc_id] = len(tokens)

    def remove_document(self, doc_id: int) -> None:
        """Remove ``doc_id`` from all postings."""
        if doc_id not in self._doc_lengths:
            return
        for token in list(self._postings.keys()):
            self._postings[token].pop(doc_id, None)
            if not self._postings[token]:
                del self._postings[token]
        del self._doc_lengths[doc_id]

    def postings(self, token: str) -> Mapping[int, int]:
        """Mapping of doc id → term frequency for ``token``."""
        return dict(self._postings.get(token, {}))

    def document_frequency(self, token: str) -> int:
        return len(self._postings.get(token, {}))

    def documents_containing(self, token: str) -> set[int]:
        return set(self._postings.get(token, {}))

    def documents_containing_all(self, tokens: Iterable[str]) -> set[int]:
        """Doc ids containing every token in ``tokens``."""
        result: set[int] | None = None
        for token in tokens:
            docs = self.documents_containing(token)
            result = docs if result is None else (result & docs)
            if not result:
                return set()
        return result or set()

    def document_length(self, doc_id: int) -> int:
        return self._doc_lengths.get(doc_id, 0)

    @property
    def num_documents(self) -> int:
        return len(self._doc_lengths)

    @property
    def average_document_length(self) -> float:
        if not self._doc_lengths:
            return 0.0
        return sum(self._doc_lengths.values()) / len(self._doc_lengths)

    def vocabulary(self) -> set[str]:
        return set(self._postings.keys())
