"""Prefix tree (trie) over entity token sequences.

GenExpan constrains beam-search decoding so that only candidate entities can
be generated (Section V-B.1, Figure 6).  The tree maps token prefixes to the
set of tokens allowed next; a complete root-to-leaf path spells exactly one
candidate entity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence


@dataclass
class _Node:
    children: dict[str, "_Node"] = field(default_factory=dict)
    #: entity name terminating at this node (None for internal-only nodes).
    terminal: str | None = None


class PrefixTree:
    """A trie over tokenised entity names."""

    def __init__(self):
        self._root = _Node()
        self._size = 0

    # -- construction --------------------------------------------------------
    def insert(self, tokens: Sequence[str], name: str) -> None:
        """Insert the token path ``tokens`` terminating in entity ``name``."""
        if not tokens:
            raise ValueError("cannot insert an empty token sequence")
        node = self._root
        for token in tokens:
            node = node.children.setdefault(token, _Node())
        if node.terminal is None:
            self._size += 1
        node.terminal = name

    @classmethod
    def from_entities(
        cls, names: Iterable[str], tokenizer
    ) -> "PrefixTree":
        """Build a tree from entity surface forms using ``tokenizer``."""
        tree = cls()
        for name in names:
            tokens = tokenizer.tokenize_entity_name(name)
            if tokens:
                tree.insert(tokens, name)
        return tree

    # -- queries --------------------------------------------------------------
    def _walk(self, prefix: Sequence[str]) -> _Node | None:
        node = self._root
        for token in prefix:
            node = node.children.get(token)
            if node is None:
                return None
        return node

    def allowed_next(self, prefix: Sequence[str]) -> list[str]:
        """Tokens allowed after ``prefix`` (empty when the prefix is invalid)."""
        node = self._walk(prefix)
        if node is None:
            return []
        return sorted(node.children.keys())

    def is_complete(self, prefix: Sequence[str]) -> bool:
        """True when ``prefix`` spells a complete candidate entity."""
        node = self._walk(prefix)
        return node is not None and node.terminal is not None

    def entity_at(self, prefix: Sequence[str]) -> str | None:
        """Entity name terminating at ``prefix``, or None."""
        node = self._walk(prefix)
        return node.terminal if node is not None else None

    def contains_prefix(self, prefix: Sequence[str]) -> bool:
        """True when ``prefix`` is a valid (possibly partial) path."""
        return self._walk(prefix) is not None

    def entities_with_prefix(self, prefix: Sequence[str]) -> list[str]:
        """All entity names reachable from ``prefix`` (sorted)."""
        node = self._walk(prefix)
        if node is None:
            return []
        found: list[str] = []
        stack = [node]
        while stack:
            current = stack.pop()
            if current.terminal is not None:
                found.append(current.terminal)
            stack.extend(current.children.values())
        return sorted(found)

    def __len__(self) -> int:
        return self._size

    def __contains__(self, tokens: Sequence[str]) -> bool:
        return self.is_complete(tokens)
