"""Python client SDK for the v1 expansion API.

Two interchangeable transports behind one :class:`ExpansionClient`:

* HTTP, against a running ``repro serve`` endpoint::

      client = ExpansionClient.connect("http://127.0.0.1:8080")

* in-process, against an :class:`~repro.serve.service.ExpansionService` in
  the same interpreter (tests, notebooks, embedded serving)::

      client = ExpansionClient.in_process(service)

The wire protocol, error taxonomy, and returned types are identical across
transports — both drive the shared v1 dispatcher (:mod:`repro.api.v1`).
"""

from repro.client.client import ExpansionClient
from repro.client.transport import HttpTransport, InProcessTransport

__all__ = [
    "ExpansionClient",
    "HttpTransport",
    "InProcessTransport",
]
