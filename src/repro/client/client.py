"""The Python client SDK for the v1 expansion API.

:class:`ExpansionClient` wraps a transport (in-process or HTTP — see
:mod:`repro.client.transport`) behind typed methods::

    client = ExpansionClient.connect("http://127.0.0.1:8080")   # HTTP
    client = ExpansionClient.in_process(service)                # same process

    response = client.expand("retexpan", query_id="q-...", top_k=20)
    job = client.start_fit("genexpan", pin=True)
    job = client.wait_for_fit(job["job_id"])

Server-side failures arrive as the structured taxonomy and are re-raised as
the *same* exception classes the in-process service raises
(:class:`UnknownMethodError`, :class:`DatasetError`, :class:`JobConflictError`,
...), so code written against one transport behaves identically on the other.
"""

from __future__ import annotations

import time
from typing import Callable, Mapping, Sequence
from urllib.parse import urlencode

from repro.api.errors import exception_for_payload
from repro.api.options import ExpandOptions
from repro.exceptions import JobError, ReproError, ServiceError, TransportError
from repro.serve.protocol import ExpandRequest, ExpandResponse, MethodInfo
from repro.client.transport import HttpTransport, InProcessTransport


class ExpansionClient:
    """A v1 API client over an interchangeable transport."""

    def __init__(self, transport):
        self.transport = transport
        #: server-assigned id of the most recent call, for log correlation.
        self.last_request_id: str | None = None

    # -- constructors ------------------------------------------------------------
    @classmethod
    def connect(
        cls,
        url: str,
        timeout: float = 10.0,
        max_retries: int = 2,
        backoff_seconds: float = 0.1,
        api_key: str | None = None,
    ) -> "ExpansionClient":
        """A client speaking HTTP to a running ``repro serve`` endpoint.

        ``api_key`` authenticates against a server running the multi-tenant
        front door (sent as ``X-Api-Key`` on every request)."""
        return cls(
            HttpTransport(
                url,
                timeout=timeout,
                max_retries=max_retries,
                backoff_seconds=backoff_seconds,
                api_key=api_key,
            )
        )

    @classmethod
    def in_process(cls, service) -> "ExpansionClient":
        """A client serving calls from an :class:`ExpansionService` directly."""
        return cls(InProcessTransport(service))

    # -- expansion ---------------------------------------------------------------
    def expand(
        self,
        method: str,
        query_id: str | None = None,
        class_id: str | None = None,
        positive_seed_ids: Sequence[int] = (),
        negative_seed_ids: Sequence[int] = (),
        options: ExpandOptions | None = None,
        top_k: int | None = None,
        use_cache: bool | None = None,
        offset: int | None = None,
        limit: int | None = None,
        return_names: bool | None = None,
    ) -> ExpandResponse:
        """Expand one query; pass ``options`` or the individual kwargs."""
        request = ExpandRequest(
            method=method,
            query_id=query_id,
            class_id=class_id,
            positive_seed_ids=tuple(positive_seed_ids),
            negative_seed_ids=tuple(negative_seed_ids),
            options=_merge_options(
                options,
                top_k=top_k,
                use_cache=use_cache,
                offset=offset,
                limit=limit,
                return_names=return_names,
            ),
        )
        return self.expand_request(request)

    def expand_request(self, request: ExpandRequest) -> ExpandResponse:
        """Expand a pre-built :class:`ExpandRequest` (protocol-level callers)."""
        data = self._call("POST", "/v1/expand", request.to_v1_dict())
        return ExpandResponse.from_v1_dict(data)

    def expand_batch(
        self, requests: Sequence[ExpandRequest | Mapping]
    ) -> list[ExpandResponse | ReproError]:
        """Expand several requests in one round trip.

        Items fail independently: each slot holds either the
        :class:`ExpandResponse` or the mapped exception for that request.
        """
        wire_requests = [
            request.to_v1_dict() if isinstance(request, ExpandRequest) else dict(request)
            for request in requests
        ]
        data = self._call("POST", "/v1/expand/batch", {"requests": wire_requests})
        results: list[ExpandResponse | ReproError] = []
        for slot in data["responses"]:
            if "response" in slot:
                results.append(ExpandResponse.from_v1_dict(slot["response"]))
            else:
                results.append(exception_for_payload(slot["error"]))
        return results

    # -- fit jobs ----------------------------------------------------------------
    def start_fit(self, method: str, pin: bool = False) -> dict:
        """Start an async fit (restore-or-train); returns the job descriptor."""
        data = self._call("POST", "/v1/fits", {"method": method, "pin": pin})
        return data["job"]

    def fit_status(self, job_id: str) -> dict:
        """One job's descriptor: status, outcome, and — while it runs — the
        ``phase`` it is in (``restoring`` / ``fitting_substrates`` /
        ``training`` / ``publishing``) plus ``progress`` (``{"fraction":
        0.0-1.0, "epoch": ..., "total_epochs": ...}``), which increases
        monotonically as the training loops report and reaches 1.0 on
        success."""
        data = self._call("GET", f"/v1/fits/{job_id}")
        return data["job"]

    def cancel_fit(self, job_id: str) -> dict:
        """Cancel a queued fit job (``DELETE /v1/fits/<id>``).

        Raises :class:`JobNotFoundError` for unknown ids and
        :class:`JobConflictError` when the job is already running or
        finished (the server answers 409).
        """
        return self._call("DELETE", f"/v1/fits/{job_id}")["job"]

    def fit_jobs(self) -> list[dict]:
        return self._call("GET", "/v1/fits")["jobs"]

    def wait_for_fit(
        self,
        job_id: str,
        timeout: float = 120.0,
        poll_interval: float = 0.05,
        sleep: Callable[[float], None] = time.sleep,
    ) -> dict:
        """Poll until a fit job finishes; raises :class:`JobError` on failure."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.fit_status(job_id)
            if job["status"] == "succeeded":
                return job
            if job["status"] == "failed":
                error = job.get("error") or {}
                raise JobError(
                    f"fit job {job_id} failed: "
                    f"{error.get('message', 'unknown error')}"
                )
            if job["status"] == "cancelled":
                raise JobError(f"fit job {job_id} was cancelled")
            if time.monotonic() >= deadline:
                raise TimeoutError(f"fit job {job_id} did not finish in {timeout}s")
            sleep(poll_interval)

    # -- introspection -----------------------------------------------------------
    def methods(self) -> list[MethodInfo]:
        rows = self._call("GET", "/v1/methods")["methods"]
        return [MethodInfo(**row) for row in rows]

    def stats(self) -> dict:
        return self._call("GET", "/v1/stats")

    def dashboard(self) -> dict:
        """The gateway's fleet dashboard (``GET /v1/dashboard``): per-worker
        health, request/error/latency rollups, cache hit rates, substrate
        residency, and live fit-job phases with fractional progress.
        Gateway-only — a single worker answers 404 (append ``?format=html``
        in a browser for the self-contained HTML rendering)."""
        return self._call("GET", "/v1/dashboard")

    def healthz(self) -> dict:
        return self._call("GET", "/v1/healthz")

    # -- traces & usage ----------------------------------------------------------
    def traces(
        self,
        tenant: str | None = None,
        method: str | None = None,
        min_duration_ms: float | None = None,
        error: bool | None = None,
        limit: int | None = None,
    ) -> list[dict]:
        """Search the server's kept traces (``GET /v1/traces``): newest
        first, spans elided.  Requires ``trace_sample_rate`` on the server
        (400 otherwise)."""
        params: dict = {}
        if tenant is not None:
            params["tenant"] = tenant
        if method is not None:
            params["method"] = method
        if min_duration_ms is not None:
            params["min_duration_ms"] = min_duration_ms
        if error is not None:
            params["error"] = "true" if error else "false"
        if limit is not None:
            params["limit"] = limit
        path = "/v1/traces"
        if params:
            path += "?" + urlencode(params)
        return self._call("GET", path)["traces"]

    def trace(self, trace_id: str) -> dict:
        """One kept trace with its full span tree (``GET
        /v1/traces/<id>``); against a gateway this is the joined
        gateway+worker tree.  Raises :class:`DatasetError` when the id was
        sampled out or already evicted."""
        return self._call("GET", f"/v1/traces/{trace_id}")["trace"]

    def usage(self) -> dict | None:
        """The server's per-tenant usage summary, or ``None`` when usage
        metering is not enabled (the ``usage`` stats key is conditional)."""
        return self.stats().get("usage")

    # -- plumbing ----------------------------------------------------------------
    def _call(self, verb: str, path: str, payload: Mapping | None = None) -> dict:
        status, body = self.transport.request(verb, path, payload)
        if not isinstance(body, Mapping):
            raise TransportError(f"malformed response body for {verb} {path}")
        self.last_request_id = body.get("request_id", self.last_request_id)
        error = body.get("error")
        if error is not None:
            raise exception_for_payload(error)
        if status >= 400:
            raise TransportError(f"{verb} {path} returned HTTP {status} without an error body")
        data = body.get("data")
        if data is None:
            raise ServiceError(f"{verb} {path} returned an envelope without data")
        return data

    # -- lifecycle ---------------------------------------------------------------
    def close(self) -> None:
        close = getattr(self.transport, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "ExpansionClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _merge_options(
    options: ExpandOptions | None,
    top_k: int | None,
    use_cache: bool | None,
    offset: int | None,
    limit: int | None,
    return_names: bool | None,
) -> ExpandOptions:
    kwargs = {
        "top_k": top_k,
        "use_cache": use_cache,
        "offset": offset,
        "limit": limit,
        "return_names": return_names,
    }
    provided = {key: value for key, value in kwargs.items() if value is not None}
    if options is None:
        merged = ExpandOptions(**provided)
    elif provided:
        raise ServiceError(
            "pass either an ExpandOptions object or individual option kwargs, not both"
        )
    else:
        merged = options
    merged.validate()
    return merged
