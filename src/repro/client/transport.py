"""Client transports: how :class:`ExpansionClient` reaches a service.

Both transports expose one method — ``request(verb, path, payload) ->
(status, body)`` where ``body`` is the parsed v1 envelope — so the client is
transport-agnostic:

* :class:`InProcessTransport` drives the same :class:`~repro.api.v1.ApiV1`
  dispatcher the HTTP server mounts, directly against an
  :class:`ExpansionService` in this process (no sockets, no serialization of
  intermediate objects beyond the v1 rendering itself);
* :class:`HttpTransport` speaks JSON over stdlib :mod:`urllib` with a
  per-request timeout and bounded retries: connection-level failures and
  responses whose taxonomy error is marked ``retryable`` are retried with
  exponential backoff, everything else is returned to the client once.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Callable, Mapping

import repro.api.v1 as apiv1
from repro.api.envelope import new_request_id
from repro.api.errors import CODE_INTERNAL, is_retryable
from repro.exceptions import TransportError


class InProcessTransport:
    """Serves client calls from an :class:`ExpansionService` in this process."""

    def __init__(self, service):
        self.service = service
        self._api = apiv1.ApiV1(service)

    def request(
        self, verb: str, path: str, payload: Mapping | None = None
    ) -> tuple[int, dict]:
        result = self._api.dispatch(verb, path, payload)
        return result.status, apiv1.render_v1_body(result, new_request_id())

    def close(self) -> None:
        """Release the dispatcher's batch pool (the service itself is not
        owned by the transport and stays open)."""
        self._api.close()


class HttpTransport:
    """Speaks the v1 protocol over HTTP with timeouts and bounded retries."""

    def __init__(
        self,
        base_url: str,
        timeout: float = 10.0,
        max_retries: int = 2,
        backoff_seconds: float = 0.1,
        sleep: Callable[[float], None] = time.sleep,
    ):
        """``max_retries`` counts *additional* attempts after the first;
        ``sleep`` is injectable so tests can skip the real backoff."""
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.max_retries = max_retries
        self.backoff_seconds = backoff_seconds
        self._sleep = sleep
        #: attempts actually made, for tests and debugging.
        self.attempts = 0

    def request(
        self, verb: str, path: str, payload: Mapping | None = None
    ) -> tuple[int, dict]:
        attempt = 0
        while True:
            if attempt:
                self._sleep(self.backoff_seconds * (2 ** (attempt - 1)))
            self.attempts += 1
            try:
                status, body = self._request_once(verb, path, payload)
            except (urllib.error.URLError, ConnectionError, TimeoutError) as exc:
                # Connection-level failure: the request may or may not have
                # reached the server.  Only GETs are safe to replay blindly —
                # re-POSTing e.g. /v1/fits could duplicate the server-side
                # effect (and then surface a spurious 409 to the caller).
                if verb.upper() == "GET" and attempt < self.max_retries:
                    attempt += 1
                    continue
                raise TransportError(
                    f"{verb} {self.base_url}{path} failed after "
                    f"{attempt + 1} attempt(s): {exc}"
                ) from exc
            if (
                status >= 400
                and is_retryable(body.get("error") or {})
                and attempt < self.max_retries
            ):
                # The server answered and declined (e.g. 503 shutting down):
                # nothing was duplicated, so any verb may retry.
                attempt += 1
                continue
            return status, body

    def _request_once(
        self, verb: str, path: str, payload: Mapping | None
    ) -> tuple[int, dict]:
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=verb
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.status, self._parse_body(response.read(), response.status)
        except urllib.error.HTTPError as error:
            return error.code, self._parse_body(error.read(), error.code)

    @staticmethod
    def _parse_body(raw: bytes, status: int) -> dict:
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            body = None
        if isinstance(body, dict):
            return body
        # A non-JSON body (proxy error page, truncated response): surface it
        # through the taxonomy so the client's error mapping stays uniform.
        return {
            "error": {
                "error": "TransportError",
                "code": CODE_INTERNAL,
                "message": f"non-JSON response body (HTTP {status})",
                "details": {},
                "retryable": status >= 500,
            }
        }

    def close(self) -> None:
        """urllib opens one connection per request; nothing to release."""
