"""Client transports: how :class:`ExpansionClient` reaches a service.

Both transports expose one method — ``request(verb, path, payload) ->
(status, body)`` where ``body`` is the parsed v1 envelope — so the client is
transport-agnostic:

* :class:`InProcessTransport` drives the same :class:`~repro.api.v1.ApiV1`
  dispatcher the HTTP server mounts, directly against an
  :class:`ExpansionService` in this process (no sockets, no serialization of
  intermediate objects beyond the v1 rendering itself);
* :class:`HttpTransport` speaks JSON over a pool of keep-alive stdlib
  :class:`http.client.HTTPConnection` sockets.  Connections are reused
  across requests (one TCP+HTTP handshake amortised over a chatty caller's
  whole session) and returned to a bounded idle pool; a reused socket the
  server closed while it sat idle is detected (``RemoteDisconnected`` /
  ``BadStatusLine`` / reset before any response byte) and the request is
  replayed once on a fresh connection — the server never saw it, so the
  replay is safe for every verb.  On top of that sit the same per-request
  timeout and bounded retries as before: fresh-connection failures and
  responses whose taxonomy error is marked ``retryable`` are retried with
  exponential backoff (connection-level failures only for GETs — a POST
  that may have reached the server is never replayed blindly), everything
  else is returned to the caller once.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time
from typing import Callable, Mapping
from urllib.parse import urlsplit

import repro.api.v1 as apiv1
from repro.api.envelope import new_request_id
from repro.api.errors import CODE_INTERNAL, is_retryable
from repro.exceptions import TransportError
from repro.gate import API_KEY_HEADER
from repro.obs import request_scope

#: ceiling on a server-supplied Retry-After hint the client will honor; a
#: hostile or buggy server must not park a caller for an hour.
MAX_RETRY_AFTER_SECONDS = 30.0

#: failures that mean "the server closed this socket before answering" —
#: on a *reused* keep-alive connection these signal a stale socket whose
#: request never reached the application, so a one-shot replay is safe.
_STALE_CONNECTION_ERRORS = (
    http.client.RemoteDisconnected,
    http.client.BadStatusLine,
    ConnectionResetError,
    BrokenPipeError,
)


class InProcessTransport:
    """Serves client calls from an :class:`ExpansionService` in this process."""

    def __init__(self, service):
        self.service = service
        self._api = apiv1.ApiV1(service)

    def request(
        self, verb: str, path: str, payload: Mapping | None = None
    ) -> tuple[int, dict]:
        # Mint the id before dispatch and bind it for the duration, so the
        # id in the rendered envelope matches what traces and the slow-query
        # log recorded — the same contract the HTTP handler provides.
        request_id = new_request_id()
        with request_scope(request_id):
            result = self._api.dispatch(verb, path, payload)
        return result.status, apiv1.render_v1_body(result, request_id)

    def close(self) -> None:
        """Release the dispatcher's batch pool (the service itself is not
        owned by the transport and stays open)."""
        self._api.close()


class HttpTransport:
    """Speaks the v1 protocol over pooled keep-alive HTTP connections."""

    def __init__(
        self,
        base_url: str,
        timeout: float = 10.0,
        max_retries: int = 2,
        backoff_seconds: float = 0.1,
        sleep: Callable[[float], None] = time.sleep,
        keep_alive: bool = True,
        max_idle_connections: int = 4,
        api_key: str | None = None,
    ):
        """``max_retries`` counts *additional* attempts after the first;
        ``sleep`` is injectable so tests can skip the real backoff.
        ``keep_alive=False`` opens one connection per request (the pre-pool
        behaviour); ``max_idle_connections`` bounds the idle pool so a burst
        of concurrent callers cannot accumulate sockets forever.
        ``api_key`` is sent as the ``X-Api-Key`` header on every request
        (required when the server runs a keyfile without anonymous access)."""
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        self.base_url = base_url.rstrip("/")
        parts = urlsplit(self.base_url if "://" in self.base_url else f"http://{self.base_url}")
        if parts.scheme not in ("http", "https") or parts.hostname is None:
            raise ValueError(f"unsupported base url {base_url!r}")
        self._scheme = parts.scheme
        self._host = parts.hostname
        self._port = parts.port or (443 if parts.scheme == "https" else 80)
        self._prefix = parts.path.rstrip("/")
        self.timeout = timeout
        self.max_retries = max_retries
        self.backoff_seconds = backoff_seconds
        self.keep_alive = keep_alive
        self.max_idle_connections = max(0, max_idle_connections)
        self.api_key = api_key
        self._sleep = sleep
        self._pool_lock = threading.Lock()
        self._idle: list[http.client.HTTPConnection] = []
        #: attempts actually made, for tests and debugging.
        self.attempts = 0
        #: sockets opened / stale keep-alive sockets replaced, for tests.
        self.connections_opened = 0
        self.stale_reconnects = 0

    def request(
        self, verb: str, path: str, payload: Mapping | None = None
    ) -> tuple[int, dict]:
        attempt = 0
        delay_hint: float | None = None
        while True:
            if attempt:
                if delay_hint is not None:
                    # the server told us when capacity/quota returns (429
                    # Retry-After or details.retry_after on a shed 503);
                    # honoring it beats blind exponential backoff.
                    self._sleep(min(delay_hint, MAX_RETRY_AFTER_SECONDS))
                else:
                    self._sleep(self.backoff_seconds * (2 ** (attempt - 1)))
            delay_hint = None
            self.attempts += 1
            try:
                status, body, retry_after = self._request_once(verb, path, payload)
            except (OSError, http.client.HTTPException) as exc:
                # Fresh-connection failure: the request may or may not have
                # reached the server.  Only GETs are safe to replay blindly —
                # re-POSTing e.g. /v1/fits could duplicate the server-side
                # effect (and then surface a spurious 409 to the caller).
                if verb.upper() == "GET" and attempt < self.max_retries:
                    attempt += 1
                    continue
                raise TransportError(
                    f"{verb} {self.base_url}{path} failed after "
                    f"{attempt + 1} attempt(s): {exc}"
                ) from exc
            if (
                status >= 400
                and is_retryable(body.get("error") or {})
                and attempt < self.max_retries
            ):
                # The server answered and declined (e.g. 503 shutting down):
                # nothing was duplicated, so any verb may retry.
                delay_hint = self._delay_hint(body, retry_after)
                attempt += 1
                continue
            return status, body

    @staticmethod
    def _delay_hint(body: dict, header_value: str | None) -> float | None:
        """The server's preferred backoff: ``details.retry_after`` (exact
        float) first, the integral ``Retry-After`` header as fallback."""
        details = (body.get("error") or {}).get("details") or {}
        for hint in (details.get("retry_after"), header_value):
            if hint is None:
                continue
            try:
                return max(0.0, float(hint))
            except (TypeError, ValueError):
                continue
        return None

    def _request_once(
        self, verb: str, path: str, payload: Mapping | None
    ) -> tuple[int, dict, str | None]:
        body = None
        headers = {"Accept": "application/json"}
        if self.api_key is not None:
            headers[API_KEY_HEADER] = self.api_key
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        for replayed in (False, True):
            if replayed:
                # the replay leg must not pick *another* possibly-stale
                # pooled socket (e.g. after a server restart with several
                # idle connections): force a genuinely fresh one.
                connection, reused = self._fresh_connection(), False
            else:
                connection, reused = self._checkout()
            try:
                connection.request(verb, self._prefix + path, body=body, headers=headers)
                response = connection.getresponse()
            except _STALE_CONNECTION_ERRORS:
                connection.close()
                if reused and not replayed:
                    # The server closed this idle keep-alive socket before
                    # our request reached it; replay once on a fresh one.
                    self.stale_reconnects += 1
                    continue
                raise
            except (OSError, http.client.HTTPException):
                connection.close()
                raise
            # The status line arrived, so the server definitively received
            # (and processed) the request: a failure from here on must NOT
            # be replayed — it surfaces to the caller's retry policy.
            try:
                raw = response.read()
            except (OSError, http.client.HTTPException):
                connection.close()
                raise
            status = response.status
            retry_after = response.getheader("Retry-After")
            if not response.will_close and self.keep_alive:
                self._checkin(connection)
            else:
                connection.close()
            return status, self._parse_body(raw, status), retry_after
        raise TransportError(f"{verb} {self.base_url}{path}: unreachable")  # pragma: no cover

    # -- connection pool ---------------------------------------------------------
    def _checkout(self) -> tuple[http.client.HTTPConnection, bool]:
        """An idle pooled connection (reused=True) or a fresh one."""
        if self.keep_alive:
            with self._pool_lock:
                if self._idle:
                    return self._idle.pop(), True
        return self._fresh_connection(), False

    def _fresh_connection(self) -> http.client.HTTPConnection:
        factory = (
            http.client.HTTPSConnection
            if self._scheme == "https"
            else http.client.HTTPConnection
        )
        self.connections_opened += 1
        connection = factory(self._host, self._port, timeout=self.timeout)
        # http.client writes a POST as two sends (headers, then body), and
        # on a reused keep-alive socket that pattern collides with Nagle +
        # delayed ACK: the body segment sits in the client's TCP stack for
        # ~40ms waiting for an ACK the server's stack is deliberately
        # withholding.  TCP_NODELAY turns that stall off; connect eagerly
        # so the option is set before the first request (failures surface
        # through the same OSError path a lazy connect used).
        connection.connect()
        try:
            connection.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except (AttributeError, OSError):
            pass  # non-TCP transport (tests may stub the socket): Nagle stays on
        return connection

    def _checkin(self, connection: http.client.HTTPConnection) -> None:
        with self._pool_lock:
            if len(self._idle) < self.max_idle_connections:
                self._idle.append(connection)
                return
        connection.close()

    @staticmethod
    def _parse_body(raw: bytes, status: int) -> dict:
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            body = None
        if isinstance(body, dict):
            return body
        # A non-JSON body (proxy error page, truncated response): surface it
        # through the taxonomy so the client's error mapping stays uniform.
        return {
            "error": {
                "error": "TransportError",
                "code": CODE_INTERNAL,
                "message": f"non-JSON response body (HTTP {status})",
                "details": {},
                "retryable": status >= 500,
            }
        }

    def close(self) -> None:
        """Close every idle pooled connection."""
        with self._pool_lock:
            idle, self._idle = self._idle, []
        for connection in idle:
            connection.close()
