"""The RetExpan pipeline (Section V-A.1).

Three stages per query:

1. **Entity representation** — the masked-entity context encoder (trained
   with the entity-prediction auxiliary task) yields one hidden-state vector
   per candidate entity.
2. **Entity expansion** — candidates are ranked by mean cosine similarity to
   the *positive* seed entities only (Eq. 5) and the top-K form ``L0``.
3. **Entity re-ranking** — negative seed entities re-rank ``L0`` segment by
   segment (segment length ``l``), pushing down entities similar to the
   negative seeds without promoting noise.

The ``use_contrastive`` switch adds ultra-fine-grained contrastive learning:
similarities are then computed in the query-conditioned projected space.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.config import RetExpanConfig
from repro.core.base import Expander
from repro.core.rerank import segmented_rerank
from repro.core.resources import SharedResources
from repro.dataset.ultrawiki import UltraWikiDataset
from repro.exceptions import ExpansionError, PersistenceError
from repro.lm.context_encoder import EntityRepresentations
from repro.obs import span
from repro.retexpan.contrastive import UltraContrastiveLearner
from repro.retrieval import CandidateMatrix
from repro.substrate import ANN_INDEX, ENTITY_REPRESENTATIONS
from repro.retexpan.expansion import (
    matrix_similarity_scores,
    positive_similarity_scores,
    top_k_expansion,
)
from repro.types import ExpansionResult, Query


class RetExpan(Expander):
    """Retrieval-based Ultra-ESE with negative seed entities."""

    supports_persistence = True
    #: v3: the (normalized) hidden-state candidate matrix is precomputed and
    #: the artifact references a partitioned ANN-index substrate.
    state_version = 3

    def __init__(
        self,
        config: RetExpanConfig | None = None,
        resources: SharedResources | None = None,
        contrastive_queries: list[Query] | None = None,
        name: str | None = None,
    ):
        super().__init__()
        self.config = config or RetExpanConfig()
        self.config.validate()
        self._resources = resources
        self._contrastive_queries = contrastive_queries
        self._representations: EntityRepresentations | None = None
        self._contrastive: UltraContrastiveLearner | None = None
        self._matrix: CandidateMatrix | None = None
        if name is not None:
            self.name = name
        else:
            self.name = "RetExpan + Contrast" if self.config.use_contrastive else "RetExpan"

    def _ann_params(self) -> dict:
        return self._resources.ann_index_params(
            ENTITY_REPRESENTATIONS,
            self._resources.entity_representation_params(
                trained=self.config.use_entity_prediction
            ),
            field="hidden",
            normalize=True,
        )

    def _bind_matrix(self, index) -> None:
        matrix = CandidateMatrix.from_vectors(
            dict(self._representations.hidden), normalize=True
        )
        matrix.attach_index(index)
        self._matrix = matrix

    # -- fitting -----------------------------------------------------------------
    def _fit(self, dataset: UltraWikiDataset) -> None:
        resources = self._resources or SharedResources(
            dataset, encoder_config=self.config.encoder
        )
        self._resources = resources
        self._representations = resources.entity_representations(
            trained=self.config.use_entity_prediction
        )
        self._bind_matrix(resources.ann_index(self._ann_params()))
        if self.config.use_contrastive:
            learner = UltraContrastiveLearner(self.config.contrastive)
            learner.fit(
                dataset,
                self._representations,
                resources.oracle(),
                queries=self._contrastive_queries,
            )
            self._contrastive = learner

    # -- persistence -------------------------------------------------------------
    def substrate_dependencies(self) -> list[tuple[str, dict]]:
        """The trained (or ablated) entity representations this fit stands on."""
        if self._resources is None:
            return []
        return [
            (
                ENTITY_REPRESENTATIONS,
                self._resources.entity_representation_params(
                    trained=self.config.use_entity_prediction
                ),
            ),
            (ANN_INDEX, self._ann_params()),
        ]

    def _save_state(self, directory: Path) -> None:
        # The representations substrate is *referenced* via the manifest
        # (see substrate_dependencies), not embedded; only the method-private
        # state (the ablation arms and the contrastive head) is written.
        from repro.store.serialization import write_json_state

        write_json_state(
            directory / "retexpan.json",
            {
                "use_contrastive": self._contrastive is not None,
                "use_entity_prediction": self.config.use_entity_prediction,
            },
        )
        if self._contrastive is not None:
            self._contrastive.save_state(directory / "contrastive")

    def _load_state(self, directory: Path, dataset: UltraWikiDataset) -> None:
        from repro.store.serialization import read_json_state

        meta = read_json_state(directory / "retexpan.json")
        if bool(meta.get("use_contrastive")) != self.config.use_contrastive:
            raise PersistenceError(
                "saved RetExpan state and this configuration disagree on "
                "use_contrastive; refit instead of restoring"
            )
        if bool(meta.get("use_entity_prediction")) != self.config.use_entity_prediction:
            # The representations were trained under the other ablation arm.
            raise PersistenceError(
                "saved RetExpan state and this configuration disagree on "
                "use_entity_prediction; refit instead of restoring"
            )
        self._resources = self._resources or SharedResources(
            dataset, encoder_config=self.config.encoder
        )
        self._representations = self._resolve_substrate(
            ENTITY_REPRESENTATIONS,
            self._resources.entity_representation_params(
                trained=self.config.use_entity_prediction
            ),
        )
        self._bind_matrix(self._resolve_substrate(ANN_INDEX, self._ann_params()))
        if self.config.use_contrastive:
            learner = UltraContrastiveLearner(self.config.contrastive)
            learner.load_state(directory / "contrastive", self._representations)
            self._contrastive = learner
        else:
            self._contrastive = None

    # -- similarity helpers ------------------------------------------------------------
    def _similarity_table(
        self, entity_ids: list[int], seed_ids: tuple[int, ...]
    ) -> dict[int, float]:
        """Mean cosine similarity of each entity to ``seed_ids``.

        The seed matrix is gathered **once** from the precomputed candidate
        matrix instead of re-stacked and re-normalized per entity; each
        entity keeps the historical matrix-vector product so values stay
        bitwise identical to the old per-entity scoring.
        """
        matrix = self._matrix
        table = {entity_id: 0.0 for entity_id in entity_ids}
        seeds = [s for s in seed_ids if s in matrix]
        if not seeds:
            return table
        seed_matrix = matrix.rows(seeds)
        for entity_id in entity_ids:
            if entity_id in matrix:
                table[entity_id] = float(np.mean(seed_matrix @ matrix.row(entity_id)))
        return table

    def _contrastive_rescore(
        self, query: Query, initial: list[tuple[int, float]]
    ) -> list[tuple[int, float]]:
        """Re-score the initial expansion list in the projected hypersphere space.

        The projected space was trained to pull ``L_pos``-like entities toward
        the positive seeds and push ``L_neg``-like entities away, so the
        adjusted score adds (projected similarity to positive seeds) minus
        (projected similarity to negative seeds) on top of the base score.
        """
        list_ids = [entity_id for entity_id, _ in initial]
        involved = list_ids + list(query.positive_seed_ids) + list(query.negative_seed_ids)
        projected = self._contrastive.projected_vectors(involved, query)
        pos_scores = positive_similarity_scores(
            list_ids, query.positive_seed_ids, projected
        )
        if query.negative_seed_ids:
            neg_scores = positive_similarity_scores(
                list_ids, query.negative_seed_ids, projected
            )
        else:
            neg_scores = {}
        weight = self.config.contrastive_weight
        adjusted = [
            (
                entity_id,
                base
                + weight * (pos_scores.get(entity_id, 0.0) - neg_scores.get(entity_id, 0.0)),
            )
            for entity_id, base in initial
        ]
        adjusted.sort(key=lambda item: (-item[1], item[0]))
        return adjusted

    # -- expansion ---------------------------------------------------------------------
    def _expand(self, query: Query, top_k: int) -> ExpansionResult:
        if self._representations is None or self._matrix is None:
            raise ExpansionError("RetExpan is not fitted")
        matrix = self._matrix
        expansion_size = max(self.config.expansion_size, top_k)
        with span("candidates"):
            seed_ids = [s for s in query.positive_seed_ids if s in matrix]
            profile = self.retrieval_profile()
            if seed_ids and matrix.wants_probe(profile):
                # probed mode shortlists straight from the index: no
                # per-query O(vocab) candidate list, seeds dropped from
                # the probed lists.
                candidates = matrix.shortlist(
                    None,
                    matrix.rows(seed_ids).mean(axis=0),
                    profile,
                    required=expansion_size,
                    telemetry=self._ann_recorder(),
                    exclude=query.seed_ids(),
                )
            else:
                candidates = self.candidate_ids(query)

        with span("score"):
            scores = matrix_similarity_scores(
                matrix, candidates, query.positive_seed_ids
            )
        initial = top_k_expansion(scores, k=expansion_size)
        if self._contrastive is not None:
            initial = self._contrastive_rescore(query, initial)
        result = ExpansionResult.from_scores(query.query_id, initial)

        if self.config.use_negative_rerank and query.negative_seed_ids:
            # The negative score contrasts similarity to the negative seeds
            # against similarity to the positive seeds: the fine-grained-class
            # commonality cancels, leaving the attribute-level signal that
            # identifies entities sharing the negative attribute value.
            list_ids = [item.entity_id for item in result.ranking]
            negative_table = self._similarity_table(list_ids, query.negative_seed_ids)
            positive_table = self._similarity_table(list_ids, query.positive_seed_ids)

            def negative_score(entity_id: int) -> float:
                return negative_table[entity_id] - positive_table[entity_id]

            result = segmented_rerank(
                result,
                negative_score=negative_score,
                segment_length=self.config.segment_length,
            )
        return result

    # -- introspection -------------------------------------------------------------------
    @property
    def representations(self) -> EntityRepresentations:
        if self._representations is None:
            raise ExpansionError("RetExpan is not fitted")
        return self._representations

    @property
    def contrastive_learner(self) -> UltraContrastiveLearner | None:
        return self._contrastive
