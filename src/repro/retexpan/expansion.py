"""Entity expansion scoring for RetExpan (Eq. 5).

A candidate's positive similarity score is the mean cosine similarity between
its representation and the representations of the positive seed entities;
the top-K candidates form the initial expansion list ``L0``.  Negative seed
entities are deliberately not used here so that recall over the fine-grained
class is preserved (they only act during re-ranking).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import ExpansionError
from repro.utils.mathx import l2_normalize


def positive_similarity_scores(
    candidate_ids: Sequence[int],
    seed_ids: Sequence[int],
    vectors: Mapping[int, np.ndarray],
) -> dict[int, float]:
    """Mean cosine similarity of each candidate to the seed entities.

    Candidates or seeds missing from ``vectors`` are skipped (a candidate
    without any context sentence cannot be represented).
    """
    seeds = [vectors[s] for s in seed_ids if s in vectors]
    if not seeds:
        raise ExpansionError("none of the seed entities has a representation")
    seed_matrix = l2_normalize(np.stack(seeds), axis=1)

    usable = [c for c in candidate_ids if c in vectors]
    if not usable:
        return {}
    candidate_matrix = l2_normalize(np.stack([vectors[c] for c in usable]), axis=1)
    similarities = candidate_matrix @ seed_matrix.T  # (num_candidates, num_seeds)
    mean_similarities = similarities.mean(axis=1)
    return {entity_id: float(score) for entity_id, score in zip(usable, mean_similarities)}


def matrix_similarity_scores(
    matrix,
    candidate_ids: Sequence[int],
    seed_ids: Sequence[int],
) -> dict[int, float]:
    """:func:`positive_similarity_scores` over a precomputed, row-normalized
    :class:`~repro.retrieval.CandidateMatrix`.

    Because :func:`~repro.utils.mathx.l2_normalize` is purely row-wise,
    gathering rows from the normalized matrix is bitwise identical to
    stacking the raw vectors and normalizing the subset — but without the
    per-query ``np.stack`` rebuild.
    """
    seeds = [s for s in seed_ids if s in matrix]
    if not seeds:
        raise ExpansionError("none of the seed entities has a representation")
    seed_matrix = matrix.rows(seeds)

    usable = [c for c in candidate_ids if c in matrix]
    if not usable:
        return {}
    similarities = matrix.rows(usable) @ seed_matrix.T  # (num_candidates, num_seeds)
    mean_similarities = similarities.mean(axis=1)
    return {entity_id: float(score) for entity_id, score in zip(usable, mean_similarities)}


def top_k_expansion(scores: Mapping[int, float], k: int) -> list[tuple[int, float]]:
    """The ``k`` best (entity, score) pairs, deterministic under ties."""
    if k <= 0:
        raise ExpansionError("k must be positive")
    ordered = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
    return ordered[:k]
