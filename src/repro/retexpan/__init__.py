"""RetExpan: the retrieval-based Ultra-ESE framework (Section V-A)."""

from repro.retexpan.expansion import positive_similarity_scores, top_k_expansion
from repro.retexpan.contrastive import UltraContrastiveLearner
from repro.retexpan.pipeline import RetExpan

__all__ = [
    "positive_similarity_scores",
    "top_k_expansion",
    "UltraContrastiveLearner",
    "RetExpan",
]
