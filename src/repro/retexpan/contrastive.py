"""Ultra-fine-grained contrastive learning (Section V-A.2).

The enhancement strategy mines, for every query, two lists from the initial
expansion ``L0``: ``L_pos`` (entities the GPT-4 oracle judges most similar to
the positive seeds) and ``L_neg`` (most similar to the negative seeds).
Training pairs follow Eq. 6 / Eq. 7:

* positives — pairs within ``L_pos`` and within ``L_neg`` (same
  ultra-fine-grained side);
* hard negatives — pairs across ``L_pos`` × ``L_neg``;
* normal negatives — pairs against entities of *other* fine-grained classes
  (``L0'``), which keep the fine-grained semantics from collapsing.

The paper conditions each training sample on its query by appending the seed
entities to the sentence; the representation-level analogue used here
concatenates the entity vector with the query's mean seed vector before the
projection head, so the same entity can be pulled in different directions for
different queries without conflict.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.config import ContrastiveConfig
from repro.dataset.ultrawiki import UltraWikiDataset
from repro.exceptions import ModelError
from repro.lm.context_encoder import EntityRepresentations
from repro.lm.oracle import OracleLLM
from repro.lm.projection import ProjectionHead
from repro.retexpan.expansion import positive_similarity_scores, top_k_expansion
from repro.types import Query
from repro.utils.rng import RandomState

#: negatives sampled per anchor during InfoNCE training.
_NEGATIVES_PER_ANCHOR = 6
#: cap on the number of anchors to keep training tractable.
_MAX_ANCHORS = 4000


class UltraContrastiveLearner:
    """Mines contrastive data with the oracle and trains the projection head."""

    def __init__(self, config: ContrastiveConfig | None = None):
        self.config = config or ContrastiveConfig()
        self.config.validate()
        self._rng = RandomState(self.config.seed)
        self._head: ProjectionHead | None = None
        self._representations: EntityRepresentations | None = None
        self._seed_context_cache: dict[str, np.ndarray] = {}
        self._input_dim: int | None = None
        self.mined: dict[str, tuple[list[int], list[int]]] = {}

    # -- conditioning ------------------------------------------------------------
    def _seed_context(self, query: Query) -> np.ndarray:
        """Mean representation of the query's seed entities (the conditioning vector)."""
        if self._representations is None:
            raise ModelError("learner is not fitted")
        if query.query_id in self._seed_context_cache:
            return self._seed_context_cache[query.query_id]
        vectors = [
            self._representations.hidden[eid]
            for eid in (*query.positive_seed_ids, *query.negative_seed_ids)
            if eid in self._representations.hidden
        ]
        if not vectors:
            raise ModelError(f"query {query.query_id!r} has no represented seeds")
        context = np.mean(np.stack(vectors), axis=0)
        self._seed_context_cache[query.query_id] = context
        return context

    def _feature(self, entity_id: int, query: Query) -> np.ndarray:
        vector = self._representations.hidden[entity_id]
        return np.concatenate([vector, self._seed_context(query)])

    # -- mining ------------------------------------------------------------------
    def _mine_lists(
        self,
        dataset: UltraWikiDataset,
        oracle: OracleLLM,
        query: Query,
    ) -> tuple[list[int], list[int], list[int]]:
        """Return (L_pos, L_neg, L0') for one query."""
        candidate_ids = [
            eid
            for eid in dataset.entity_ids()
            if eid in self._representations.hidden
            and eid not in query.positive_seed_ids
            and eid not in query.negative_seed_ids
        ]
        scores = positive_similarity_scores(
            candidate_ids, query.positive_seed_ids, self._representations.hidden
        )
        initial_list = [eid for eid, _ in top_k_expansion(scores, k=200)]

        mined_pos = oracle.select_similar(
            query.positive_seed_ids, initial_list, top_t=self.config.mined_list_size
        )
        mined_neg = oracle.select_similar(
            query.negative_seed_ids, initial_list, top_t=self.config.mined_list_size
        )
        # Entities mined for both sides are ambiguous; drop them from both.
        overlap = set(mined_pos) & set(mined_neg)
        mined_pos = [eid for eid in mined_pos if eid not in overlap]
        mined_neg = [eid for eid in mined_neg if eid not in overlap]

        fine_class = dataset.ultra_class(query.class_id).fine_class
        rng = self._rng.child("other", query.query_id)
        other_class_pool = [
            entity.entity_id
            for entity in dataset.entities()
            if entity.fine_class is not None
            and entity.fine_class != fine_class
            and entity.entity_id in self._representations.hidden
        ]
        sample_size = min(self.config.num_other_class_entities, len(other_class_pool))
        other = rng.sample(other_class_pool, sample_size) if sample_size else []
        return mined_pos, mined_neg, other

    # -- training triplets -----------------------------------------------------------
    def _build_triplets(
        self,
        dataset: UltraWikiDataset,
        oracle: OracleLLM,
        queries: list[Query],
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        anchors: list[np.ndarray] = []
        positives: list[np.ndarray] = []
        negatives: list[np.ndarray] = []
        rng = self._rng.child("triplets")

        for query in queries:
            mined_pos, mined_neg, other = self._mine_lists(dataset, oracle, query)
            self.mined[query.query_id] = (mined_pos, mined_neg)
            for own_list, opposite_list in ((mined_pos, mined_neg), (mined_neg, mined_pos)):
                if not own_list:
                    continue
                for anchor_id in own_list:
                    anchor_vec = self._feature(anchor_id, query)
                    # Positive: another member of the same mined list, or the
                    # anchor itself when intra-list positives are ablated.
                    partners = [eid for eid in own_list if eid != anchor_id]
                    if self.config.use_intra_positive_pairs and partners:
                        partner_id = partners[rng.child(anchor_id, "p").integers(0, len(partners))]
                        positive_vec = self._feature(partner_id, query)
                    else:
                        positive_vec = anchor_vec.copy()
                    # Negatives: hard (opposite mined list) and/or normal (other classes).
                    pool: list[int] = []
                    if self.config.use_hard_negatives:
                        pool.extend(opposite_list)
                    if self.config.use_normal_negatives:
                        pool.extend(other)
                    if not pool:
                        continue
                    negative_rng = rng.child(anchor_id, "n")
                    chosen = [
                        pool[negative_rng.integers(0, len(pool))]
                        for _ in range(_NEGATIVES_PER_ANCHOR)
                    ]
                    negative_vecs = np.stack(
                        [self._feature(eid, query) for eid in chosen]
                    )
                    anchors.append(anchor_vec)
                    positives.append(positive_vec)
                    negatives.append(negative_vecs)

        if not anchors:
            raise ModelError("no contrastive training pairs could be mined")
        if len(anchors) > _MAX_ANCHORS:
            keep = self._rng.child("subsample").sample(range(len(anchors)), _MAX_ANCHORS)
            anchors = [anchors[i] for i in keep]
            positives = [positives[i] for i in keep]
            negatives = [negatives[i] for i in keep]
        return np.stack(anchors), np.stack(positives), np.stack(negatives)

    # -- public API -------------------------------------------------------------------
    def fit(
        self,
        dataset: UltraWikiDataset,
        representations: EntityRepresentations,
        oracle: OracleLLM,
        queries: list[Query] | None = None,
    ) -> "UltraContrastiveLearner":
        """Mine contrastive data for ``queries`` and train the projection head."""
        self._representations = representations
        self._seed_context_cache.clear()
        self.mined.clear()
        queries = queries if queries is not None else list(dataset.queries)
        sample_dim = len(next(iter(representations.hidden.values())))
        self._input_dim = 2 * sample_dim
        self._head = ProjectionHead(
            input_dim=self._input_dim,
            output_dim=self.config.projection_dim,
            seed=self.config.seed,
        )
        anchors, positives, negatives = self._build_triplets(dataset, oracle, queries)
        self._head.train_info_nce(
            anchors,
            positives,
            negatives,
            epochs=self.config.epochs,
            batch_size=self.config.batch_size,
            learning_rate=self.config.learning_rate,
            temperature=self.config.temperature,
            seed=self.config.seed,
        )
        return self

    # -- persistence ------------------------------------------------------------
    def save_state(self, directory: str | Path) -> None:
        """Persist the trained projection head and the mined lists.

        Seed-context vectors are derived from the entity representations on
        demand, so only the head parameters and bookkeeping are written; the
        representations themselves are saved by the owning expander.
        """
        from repro.store.serialization import save_array, write_json_state

        if self._head is None:
            raise ModelError("learner is not fitted")
        directory = Path(directory)
        write_json_state(
            directory / "contrastive.json",
            {
                "input_dim": self._input_dim,
                "output_dim": self._head.output_dim,
                "hidden_dim": self._head.hidden_dim,
                "mined": {
                    query_id: [list(pos), list(neg)]
                    for query_id, (pos, neg) in self.mined.items()
                },
            },
        )
        for key, value in self._head.state_dict().items():
            save_array(directory / f"head_{key}.npy", value)

    def load_state(
        self, directory: str | Path, representations: EntityRepresentations
    ) -> "UltraContrastiveLearner":
        """Restore a trained learner against already-restored representations."""
        from repro.store.serialization import load_array, read_json_state

        directory = Path(directory)
        meta = read_json_state(directory / "contrastive.json")
        self._representations = representations
        self._seed_context_cache.clear()
        self._input_dim = int(meta["input_dim"])
        self._head = ProjectionHead(
            input_dim=self._input_dim,
            output_dim=int(meta["output_dim"]),
            hidden_dim=int(meta["hidden_dim"]),
            seed=self.config.seed,
        )
        self._head.load_state_dict(
            {key: load_array(directory / f"head_{key}.npy") for key in ("W1", "b1", "W2", "b2")}
        )
        self.mined = {
            query_id: ([int(e) for e in pos], [int(e) for e in neg])
            for query_id, (pos, neg) in meta.get("mined", {}).items()
        }
        return self

    def project(self, entity_id: int, query: Query) -> np.ndarray:
        """Project an entity, conditioned on the query, onto the hypersphere."""
        if self._head is None or self._representations is None:
            raise ModelError("learner is not fitted")
        if entity_id not in self._representations.hidden:
            raise ModelError(f"no representation for entity {entity_id}")
        return self._head.project(self._feature(entity_id, query))

    def projected_vectors(self, entity_ids: list[int], query: Query) -> dict[int, np.ndarray]:
        """Batch projection of ``entity_ids`` conditioned on ``query``."""
        if self._head is None or self._representations is None:
            raise ModelError("learner is not fitted")
        usable = [eid for eid in entity_ids if eid in self._representations.hidden]
        if not usable:
            return {}
        features = np.stack([self._feature(eid, query) for eid in usable])
        projected = self._head.project(features)
        return {eid: projected[i] for i, eid in enumerate(usable)}

    @property
    def is_fitted(self) -> bool:
        return self._head is not None
