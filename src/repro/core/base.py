"""The common expander interface.

Every method — the paper's RetExpan and GenExpan, the prior baselines, and
the GPT-4 oracle — implements :class:`Expander`: ``fit`` binds the method to
a dataset (training whatever models it needs) and ``expand`` maps a query to
a ranked list of candidate entity ids that never contains the seed entities.

Fitted state is also *persistable*: methods that set
``supports_persistence`` implement ``_save_state`` / ``_load_state`` so the
artifact store (:mod:`repro.store`) can write a fit to disk once and restore
it on later restarts or in sibling worker processes without re-training.

Methods built on shared substrates (:mod:`repro.substrate`) additionally
declare them via :meth:`Expander.substrate_dependencies`; their artifacts
then *reference* the content-addressed substrate artifacts instead of
embedding a private copy, and ``_load_state`` resolves the substrates
through the shared provider (store-restored, never refitted, when the
artifact being restored references them).
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Sequence

from repro.dataset.ultrawiki import UltraWikiDataset
from repro.exceptions import ExpansionError, PersistenceError
from repro.obs import span
from repro.retrieval import RetrievalProfile
from repro.types import ExpansionResult, Query

#: the active per-request retrieval profile, scoped per thread: ``expand``
#: installs it for the duration of ``_expand`` so subclasses read it via
#: :meth:`Expander.retrieval_profile` without any signature churn, and
#: concurrent batches on different threads never see each other's knobs.
_RETRIEVAL_SCOPE = threading.local()

#: profile applied when a request carries no retrieval options.
_DEFAULT_PROFILE = RetrievalProfile()


class Expander(ABC):
    """Abstract base class of all entity-set-expansion methods."""

    #: human-readable method name used in reports and benchmarks.
    name: str = "expander"

    #: True when the subclass implements ``_save_state`` / ``_load_state``.
    supports_persistence: bool = False

    #: bumped by a subclass whenever its on-disk state layout changes; the
    #: artifact store refuses to restore state written under another version.
    state_version: int = 1

    def __init__(self):
        self._dataset: UltraWikiDataset | None = None
        #: substrate resolver of the artifact currently being restored (set
        #: by ``load_state`` for the duration of ``_load_state`` only).
        self._inline_substrates = None

    # -- lifecycle --------------------------------------------------------------
    def fit(self, dataset: UltraWikiDataset) -> "Expander":
        """Bind the expander to ``dataset`` and train its underlying models."""
        self._dataset = dataset
        self._fit(dataset)
        return self

    def _fit(self, dataset: UltraWikiDataset) -> None:
        """Hook for subclasses; the default needs no training."""

    @property
    def dataset(self) -> UltraWikiDataset:
        if self._dataset is None:
            raise ExpansionError(f"{self.name} has not been fitted to a dataset")
        return self._dataset

    @property
    def is_fitted(self) -> bool:
        return self._dataset is not None

    # -- persistence -------------------------------------------------------------
    def save_state(self, directory: str | Path) -> None:
        """Write this expander's fitted state under ``directory``.

        The layout is owned by the subclass (``_save_state``); callers such
        as the artifact store only require that ``load_state`` on a freshly
        constructed, identically configured instance reproduces the fit.
        """
        if not self.supports_persistence:
            raise PersistenceError(f"{type(self).__name__} does not support persistence")
        if not self.is_fitted:
            raise PersistenceError(f"{self.name} is not fitted; nothing to save")
        self._save_state(Path(directory))

    def load_state(
        self,
        directory: str | Path,
        dataset: UltraWikiDataset,
        substrates=None,
    ) -> "Expander":
        """Restore fitted state from ``directory`` and bind to ``dataset``.

        The dataset must be the one the state was fitted on (the artifact
        store guarantees this by keying artifacts on the dataset
        fingerprint); the expander ends up indistinguishable from one whose
        ``fit`` ran in-process.  ``substrates`` (passed by the artifact
        store) resolves the substrate references of the artifact being
        restored; ``_load_state`` reaches it through
        :meth:`_resolve_substrate`.
        """
        if not self.supports_persistence:
            raise PersistenceError(f"{type(self).__name__} does not support persistence")
        self._inline_substrates = substrates
        try:
            self._load_state(Path(directory), dataset)
        finally:
            self._inline_substrates = None
        self._dataset = dataset
        return self

    def _save_state(self, directory: Path) -> None:
        """Hook for subclasses; only called when ``supports_persistence``."""
        raise NotImplementedError

    def _load_state(self, directory: Path, dataset: UltraWikiDataset) -> None:
        """Hook for subclasses; only called when ``supports_persistence``."""
        raise NotImplementedError

    # -- substrates --------------------------------------------------------------
    def substrate_dependencies(self) -> list[tuple[str, dict]]:
        """The shared substrates this method's fit stands on.

        Returns ``(kind, params)`` pairs the
        :class:`~repro.substrate.SubstrateProvider` resolves; the default is
        none.  Methods overriding this get substrate-aware persistence (the
        artifact references the substrate instead of embedding it) and
        phase-accurate fit progress (``fitting_substrates`` vs ``training``).
        """
        return []

    def _substrate_provider(self):
        """The shared provider behind this expander's resource pool, if any."""
        resources = getattr(self, "_resources", None)
        return None if resources is None else resources.provider

    def _resolve_substrate(self, kind: str, params: dict):
        """Fetch one substrate during ``_load_state`` / serving.

        Prefers the content-addressed state shipped with the artifact being
        restored (never refits), then the provider's memory cache, store,
        or — as a last resort — a fresh fit.  While restoring, the key this
        configuration computes **must** match a manifest reference: the
        method-private state was trained against exactly that substrate, so
        a mismatch (e.g. the server restarted under a different encoder
        config) is a version-style refusal, never a silent refit that would
        bind old method state to a different substrate.
        """
        provider = self._substrate_provider()
        if provider is None:
            raise PersistenceError(
                f"{type(self).__name__} has no resource pool to resolve "
                f"substrate {kind!r} from"
            )
        resolver = self._inline_substrates
        if resolver is not None:
            key = provider.key(kind, params)
            if not resolver.has(kind, key.content_hash):
                raise PersistenceError(
                    f"saved {type(self).__name__} state references a "
                    f"{kind} substrate fitted under different parameters "
                    "than this configuration; refit instead of restoring"
                )
        return provider.get(kind, params, resolver=resolver)

    def _ann_recorder(self):
        """The provider's ANN telemetry hook (``None`` without a provider)."""
        provider = self._substrate_provider()
        return None if provider is None else provider.record_ann_query

    def publish_substrates(self, store) -> list[dict]:
        """Publish this fit's substrate artifacts into ``store`` (idempotent)
        and return the manifest references; called by ``ArtifactStore.save``."""
        provider = self._substrate_provider()
        if provider is None:
            return []
        return [
            provider.publish(store, kind, params)
            for kind, params in self.substrate_dependencies()
        ]

    # -- expansion ---------------------------------------------------------------
    def expand(
        self,
        query: Query,
        top_k: int = 100,
        retrieval: RetrievalProfile | None = None,
    ) -> ExpansionResult:
        """Expand ``query`` into a ranked list of at most ``top_k`` entities.

        ``retrieval`` carries the per-request candidate-retrieval knobs
        (``ann``/``nprobe``); it is installed for the duration of
        ``_expand`` and read back by ANN-aware subclasses through
        :meth:`retrieval_profile`.
        """
        if top_k <= 0:
            raise ExpansionError("top_k must be positive")
        dataset = self.dataset
        if query.class_id not in dataset.ultra_classes:
            raise ExpansionError(
                f"query {query.query_id!r} references unknown class {query.class_id!r}"
            )
        previous = getattr(_RETRIEVAL_SCOPE, "profile", None)
        _RETRIEVAL_SCOPE.profile = retrieval if retrieval is not None else previous
        try:
            with span("expand", method=self.name, query=query.query_id):
                result = self._expand(query, top_k)
        finally:
            _RETRIEVAL_SCOPE.profile = previous
        seeds = query.seed_ids()
        filtered = [item for item in result.ranking if item.entity_id not in seeds]
        return ExpansionResult(query_id=result.query_id, ranking=tuple(filtered[:top_k]))

    def expand_batch(
        self,
        queries: Sequence[Query],
        top_k: int = 100,
        retrieval: RetrievalProfile | None = None,
    ) -> list[ExpansionResult]:
        """Expand several queries at once.

        The default runs :meth:`expand` per query; methods whose scoring
        vectorises across queries can override this to amortise work when the
        serving layer batches concurrent requests.
        """
        return [self.expand(query, top_k, retrieval=retrieval) for query in queries]

    def retrieval_profile(self) -> RetrievalProfile:
        """The retrieval knobs of the request currently being expanded."""
        profile = getattr(_RETRIEVAL_SCOPE, "profile", None)
        return profile if profile is not None else _DEFAULT_PROFILE

    @abstractmethod
    def _expand(self, query: Query, top_k: int) -> ExpansionResult:
        """Produce the raw ranking (seed filtering is applied by ``expand``)."""

    # -- helpers -------------------------------------------------------------------
    def candidate_ids(self, query: Query) -> list[int]:
        """All candidate entity ids excluding the query's seeds."""
        seeds = query.seed_ids()
        return [eid for eid in self.dataset.entity_ids() if eid not in seeds]

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}(name={self.name!r}, fitted={self.is_fitted})"
