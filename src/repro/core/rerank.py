"""Segmented re-ranking with negative seed entities (Section V-A.1).

Directly re-ranking the whole expansion list by ascending negative similarity
would push irrelevant entities (which are dissimilar to *everything*,
including the negative seeds) to the top.  The paper's remedy is segmented
re-ranking: split the list into segments of length ``l`` and re-rank each
segment individually in descending order of *dis*similarity to the negative
seeds, preserving the coarse ordering produced by the positive similarity.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.exceptions import ExpansionError
from repro.types import ExpansionResult, RankedEntity


def segmented_rerank(
    result: ExpansionResult,
    negative_score: Callable[[int], float],
    segment_length: int,
) -> ExpansionResult:
    """Re-rank ``result`` segment by segment using ``negative_score``.

    Within each segment of ``segment_length`` consecutive entries, entities
    are reordered by ascending ``negative_score`` (least similar to the
    negative seeds first).  Entities keep their original positive scores in
    the returned result so downstream consumers can still inspect them.
    """
    if segment_length <= 0:
        raise ExpansionError("segment_length must be positive")
    ranking = list(result.ranking)
    reranked: list[RankedEntity] = []
    for start in range(0, len(ranking), segment_length):
        segment = ranking[start : start + segment_length]
        segment.sort(key=lambda item: (negative_score(item.entity_id), -item.score, item.entity_id))
        reranked.extend(segment)
    return ExpansionResult(query_id=result.query_id, ranking=tuple(reranked))


def mean_similarity_scorer(
    seed_ids: Sequence[int],
    similarity: Callable[[int, int], float],
) -> Callable[[int], float]:
    """Build a scorer: mean similarity between an entity and the seed entities.

    This is the ``sco_neg`` (or ``sco_pos``) of Eq. 5 expressed over an
    arbitrary pairwise similarity function.
    """
    seed_list = list(seed_ids)

    def scorer(entity_id: int) -> float:
        if not seed_list:
            return 0.0
        return sum(similarity(entity_id, seed) for seed in seed_list) / len(seed_list)

    return scorer
