"""Core abstractions shared by all expansion methods."""

from repro.core.base import Expander
from repro.core.rerank import segmented_rerank
from repro.core.resources import SharedResources

__all__ = ["Expander", "segmented_rerank", "SharedResources"]
