"""Shared, lazily-built model resources.

Several methods rely on the same expensive substrates (the trained context
encoder's entity representations, corpus co-occurrence embeddings, the
continually pre-trained causal LM).  :class:`SharedResources` is the
per-dataset facade the expanders talk to; since the substrate layer
(:mod:`repro.substrate`) landed, the heavy lifting lives in a
:class:`~repro.substrate.SubstrateProvider` that fits each substrate at most
once per ``(kind, dataset fingerprint, params hash)`` key, restores it from
its content-addressed store artifact when one exists, and shares one
in-memory instance across every consumer — experiment harnesses comparing
many methods and serving registries holding many resident expanders alike.

The cheap, dataset-derived pieces (the GPT-4 oracle simulator and the
candidate prefix tree) stay here: they are not worth persisting.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

from repro.config import CausalLMConfig, EncoderConfig, OracleConfig
from repro.dataset.ultrawiki import UltraWikiDataset
from repro.kb.schema import default_schemas
from repro.lm.causal_lm import CausalEntityLM
from repro.lm.context_encoder import ContextEncoder, EntityRepresentations
from repro.lm.embeddings import CooccurrenceEmbeddings
from repro.lm.oracle import OracleLLM
from repro.retrieval import PartitionedIndex
from repro.substrate import (
    ANN_INDEX,
    CAUSAL_LM,
    COOCCURRENCE_EMBEDDINGS,
    ENTITY_REPRESENTATIONS,
    SubstrateProvider,
    ann_index_params,
    causal_lm_params,
    cooccurrence_params_from_encoder,
    entity_representation_params,
)
from repro.text.prefix_tree import PrefixTree
from repro.text.tokenizer import WordTokenizer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store import ArtifactStore


class SharedResources:
    """Caches fitted substrates for one dataset (provider-backed)."""

    def __init__(
        self,
        dataset: UltraWikiDataset,
        encoder_config: EncoderConfig | None = None,
        causal_lm_config: CausalLMConfig | None = None,
        oracle_config: OracleConfig | None = None,
        provider: SubstrateProvider | None = None,
        store: "ArtifactStore | None" = None,
        fit_lock: bool = True,
    ):
        """``provider`` shares an existing substrate pool; otherwise one is
        created, backed by ``store`` when given so substrate fits restore
        from (and write through to) content-addressed artifacts."""
        self.dataset = dataset
        self.provider = provider or SubstrateProvider(
            dataset, store=store, fit_lock=fit_lock
        )
        # Guards the cheap lazily-built pieces kept outside the provider.
        self._build_lock = threading.RLock()
        self.encoder_config = encoder_config or EncoderConfig()
        self.causal_lm_config = causal_lm_config or CausalLMConfig()
        self.oracle_config = oracle_config or OracleConfig()
        self._tokenizer = WordTokenizer()
        self._oracle: OracleLLM | None = None
        self._prefix_tree: PrefixTree | None = None

    # -- substrate parameters ------------------------------------------------------
    def cooccurrence_params(self) -> dict:
        """Key parameters of the co-occurrence substrate this pool serves."""
        return cooccurrence_params_from_encoder(self.encoder_config)

    def entity_representation_params(self, trained: bool = True) -> dict:
        """Key parameters of the entity-representations substrate."""
        return entity_representation_params(self.encoder_config, trained)

    def causal_lm_params(self, further_pretrain: bool = True) -> dict:
        """Key parameters of the causal-LM substrate."""
        return causal_lm_params(self.causal_lm_config, further_pretrain)

    def ann_index_params(
        self,
        source_kind: str,
        source_params: dict,
        field: str = "entity",
        dim: int | None = None,
        normalize: bool = False,
    ) -> dict:
        """Key parameters of an ANN index over one substrate's vector map."""
        return ann_index_params(
            source_kind, source_params, field=field, dim=dim, normalize=normalize
        )

    def default_substrate_specs(self) -> list[tuple[str, dict]]:
        """Every substrate the default method fleet stands on, in dependency
        order — what ``repro fit --substrates-only`` pre-builds."""
        return [
            (COOCCURRENCE_EMBEDDINGS, self.cooccurrence_params()),
            (ENTITY_REPRESENTATIONS, self.entity_representation_params(trained=True)),
            (CAUSAL_LM, self.causal_lm_params(further_pretrain=True)),
        ]

    # -- embeddings ------------------------------------------------------------
    def cooccurrence_embeddings(self) -> CooccurrenceEmbeddings:
        """PPMI-SVD embeddings over the dataset corpus (pre-training substitute)."""
        return self.provider.get(COOCCURRENCE_EMBEDDINGS, self.cooccurrence_params())

    # -- context encoder -----------------------------------------------------------
    def context_encoder(self, trained: bool = True) -> ContextEncoder:
        """The masked-entity encoder, with or without entity-prediction training.

        Memory-only: the encoder exists to produce the persistable
        entity-representations substrate and is cached by the provider.
        """
        return self.provider.context_encoder(self.encoder_config, trained=trained)

    def entity_representations(self, trained: bool = True) -> EntityRepresentations:
        """Entity hidden-state / distribution representations for all candidates."""
        return self.provider.get(
            ENTITY_REPRESENTATIONS, self.entity_representation_params(trained)
        )

    # -- ann retrieval -----------------------------------------------------------------
    def ann_index(self, params: dict) -> PartitionedIndex:
        """The partitioned retrieval index for ``params`` (built at most once)."""
        return self.provider.get(ANN_INDEX, params)

    # -- causal LM ---------------------------------------------------------------------
    def causal_lm(self, further_pretrain: bool = True) -> CausalEntityLM:
        """The GenExpan backbone, with or without continued pre-training."""
        return self.provider.get(CAUSAL_LM, self.causal_lm_params(further_pretrain))

    # -- oracle and prefix tree -----------------------------------------------------------
    def oracle(self) -> OracleLLM:
        """The simulated GPT-4 oracle bound to this dataset."""
        with self._build_lock:
            if self._oracle is None:
                attribute_values = {
                    fc.name: {a: tuple(v) for a, v in fc.attributes.items()}
                    for fc in self.dataset.fine_classes.values()
                }
                descriptions = {
                    schema.name: schema.description
                    for schema in default_schemas()
                    if schema.name in self.dataset.fine_classes
                }
                self._oracle = OracleLLM(
                    self.dataset.entities(),
                    attribute_values,
                    config=self.oracle_config,
                    class_descriptions=descriptions,
                )
            return self._oracle

    def prefix_tree(self) -> PrefixTree:
        """Prefix tree over every candidate entity surface form."""
        with self._build_lock:
            if self._prefix_tree is None:
                self._prefix_tree = PrefixTree.from_entities(
                    (entity.name for entity in self.dataset.entities()), self._tokenizer
                )
            return self._prefix_tree
