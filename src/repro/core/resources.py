"""Shared, lazily-built model resources.

Several methods rely on the same expensive substrates (the trained context
encoder, corpus co-occurrence embeddings, the continually pre-trained causal
LM, the GPT-4 oracle).  :class:`SharedResources` builds each of them at most
once per dataset so that experiment harnesses comparing many methods do not
refit identical models.
"""

from __future__ import annotations

import threading

from repro.config import CausalLMConfig, EncoderConfig, OracleConfig
from repro.dataset.ultrawiki import UltraWikiDataset
from repro.kb.schema import default_schemas
from repro.lm.causal_lm import CausalEntityLM
from repro.lm.context_encoder import ContextEncoder, EntityRepresentations
from repro.lm.embeddings import CooccurrenceEmbeddings
from repro.lm.oracle import OracleLLM
from repro.text.prefix_tree import PrefixTree
from repro.text.tokenizer import WordTokenizer


class SharedResources:
    """Caches fitted substrates for one dataset."""

    def __init__(
        self,
        dataset: UltraWikiDataset,
        encoder_config: EncoderConfig | None = None,
        causal_lm_config: CausalLMConfig | None = None,
        oracle_config: OracleConfig | None = None,
    ):
        self.dataset = dataset
        # Serving fits expanders from multiple threads; one reentrant lock
        # keeps each lazy substrate built exactly once (accessors nest:
        # e.g. entity_representations -> context_encoder -> embeddings).
        self._build_lock = threading.RLock()
        self.encoder_config = encoder_config or EncoderConfig()
        self.causal_lm_config = causal_lm_config or CausalLMConfig()
        self.oracle_config = oracle_config or OracleConfig()
        self._tokenizer = WordTokenizer()
        self._cooccurrence: CooccurrenceEmbeddings | None = None
        self._encoder: ContextEncoder | None = None
        self._untrained_encoder: ContextEncoder | None = None
        self._representations: EntityRepresentations | None = None
        self._untrained_representations: EntityRepresentations | None = None
        self._causal_lm: CausalEntityLM | None = None
        self._causal_lm_no_pretrain: CausalEntityLM | None = None
        self._oracle: OracleLLM | None = None
        self._prefix_tree: PrefixTree | None = None

    # -- embeddings ------------------------------------------------------------
    def cooccurrence_embeddings(self) -> CooccurrenceEmbeddings:
        """PPMI-SVD embeddings over the dataset corpus (pre-training substitute)."""
        with self._build_lock:
            if self._cooccurrence is None:
                self._cooccurrence = CooccurrenceEmbeddings(
                    dim=self.encoder_config.embedding_dim,
                    seed=self.encoder_config.seed,
                ).fit(self.dataset.corpus, self.dataset.entities())
            return self._cooccurrence

    def adopt_cooccurrence_embeddings(self, embeddings: CooccurrenceEmbeddings) -> None:
        """Seed the lazy cache with already-built embeddings.

        Called when an artifact restore (:mod:`repro.store`) deserialises
        embeddings that this resource pool would otherwise refit from
        scratch for the next consumer.  A pool that already built its own
        keeps them — adopting must never replace state other consumers hold.
        """
        with self._build_lock:
            if self._cooccurrence is None:
                self._cooccurrence = embeddings

    # -- context encoder -----------------------------------------------------------
    def context_encoder(self, trained: bool = True) -> ContextEncoder:
        """The masked-entity encoder, with or without entity-prediction training."""
        with self._build_lock:
            if trained:
                if self._encoder is None:
                    self._encoder = ContextEncoder(self.encoder_config).fit(
                        self.dataset.corpus,
                        self.dataset.entities(),
                        pretrained=self.cooccurrence_embeddings(),
                        train=True,
                    )
                return self._encoder
            if self._untrained_encoder is None:
                self._untrained_encoder = ContextEncoder(self.encoder_config).fit(
                    self.dataset.corpus,
                    self.dataset.entities(),
                    pretrained=self.cooccurrence_embeddings(),
                    train=False,
                )
            return self._untrained_encoder

    def entity_representations(self, trained: bool = True) -> EntityRepresentations:
        """Entity hidden-state / distribution representations for all candidates."""
        with self._build_lock:
            if trained:
                if self._representations is None:
                    self._representations = self.context_encoder(True).entity_representations(
                        self.dataset.corpus, self.dataset.entities()
                    )
                return self._representations
            if self._untrained_representations is None:
                self._untrained_representations = self.context_encoder(
                    False
                ).entity_representations(
                    self.dataset.corpus, self.dataset.entities(), with_distributions=False
                )
            return self._untrained_representations

    # -- causal LM ---------------------------------------------------------------------
    def causal_lm(self, further_pretrain: bool = True) -> CausalEntityLM:
        """The GenExpan backbone, with or without continued pre-training."""
        with self._build_lock:
            if further_pretrain:
                if self._causal_lm is None:
                    config = CausalLMConfig(**{**self.causal_lm_config.__dict__, "further_pretrain": True})
                    self._causal_lm = CausalEntityLM(config).fit(
                        self.dataset.corpus, self.dataset.entities()
                    )
                return self._causal_lm
            if self._causal_lm_no_pretrain is None:
                config = CausalLMConfig(**{**self.causal_lm_config.__dict__, "further_pretrain": False})
                self._causal_lm_no_pretrain = CausalEntityLM(config).fit(
                    self.dataset.corpus, self.dataset.entities()
                )
            return self._causal_lm_no_pretrain

    # -- oracle and prefix tree -----------------------------------------------------------
    def oracle(self) -> OracleLLM:
        """The simulated GPT-4 oracle bound to this dataset."""
        with self._build_lock:
            if self._oracle is None:
                attribute_values = {
                    fc.name: {a: tuple(v) for a, v in fc.attributes.items()}
                    for fc in self.dataset.fine_classes.values()
                }
                descriptions = {
                    schema.name: schema.description
                    for schema in default_schemas()
                    if schema.name in self.dataset.fine_classes
                }
                self._oracle = OracleLLM(
                    self.dataset.entities(),
                    attribute_values,
                    config=self.oracle_config,
                    class_descriptions=descriptions,
                )
            return self._oracle

    def prefix_tree(self) -> PrefixTree:
        """Prefix tree over every candidate entity surface form."""
        with self._build_lock:
            if self._prefix_tree is None:
                self._prefix_tree = PrefixTree.from_entities(
                    (entity.name for entity in self.dataset.entities()), self._tokenizer
                )
            return self._prefix_tree
