"""Approximate candidate retrieval for the expand hot path.

The rankers in this codebase score candidates by dense similarity against
the full vocabulary — an O(vocab) scan per query.  :mod:`repro.retrieval`
turns that into a sub-linear probe: a pure-numpy partitioned (IVF-style)
index built once at fit time, persisted as a content-addressed substrate
artifact, probed per query with an ``nprobe`` knob, and always followed by
an exact re-score of the probed shortlist so top-k quality is preserved.
"""

from repro.retrieval.ann import (
    ANN_AUTO_THRESHOLD,
    CandidateMatrix,
    PartitionedIndex,
    RetrievalProfile,
)

__all__ = [
    "ANN_AUTO_THRESHOLD",
    "CandidateMatrix",
    "PartitionedIndex",
    "RetrievalProfile",
]
