"""IVF-style partitioned ANN index and precomputed candidate matrices.

Two pieces replace the per-query O(vocab) scans in the dense rankers:

* :class:`CandidateMatrix` — the expander's entity vectors stacked **once**
  at fit/load time into a C-contiguous, optionally row-normalized matrix
  with a stable (sorted) id order, replacing the per-query ``np.stack``
  rebuild.  Gathering rows from it is bitwise-identical to stacking the
  same per-entity vectors, so the exact path (``ann=off``) preserves
  ranking parity with the historical code.

* :class:`PartitionedIndex` — a coarse k-means partition of those rows.
  Queries rank candidates by dot product with the mean seed vector, which
  is a maximum-inner-product search; rows are lifted into one extra
  dimension (``sqrt(extent² - ‖x‖²)``, the classic MIPS→L2 reduction) so
  plain L2 k-means partitions the inner-product space correctly even for
  un-normalized representation vectors.  A probe visits the ``nprobe``
  nearest lists and the caller re-scores the shortlist **exactly**, so
  approximation only ever drops candidates, never mis-scores them.

The index is content-addressed substrate state (:mod:`repro.substrate`
kind ``"ann_index"``): ids + centroids + list layout persist; the vectors
themselves stay with their source substrate and the matrix is rebuilt from
them on load.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.exceptions import ArtifactCorruptError, ConfigurationError
from repro.utils.mathx import l2_normalize

#: vocabulary size at which ``ann="auto"`` switches from the exact scan to
#: probed retrieval.  Small vocabularies stay exact (and bitwise identical
#: to the historical rankings) because the scan is already cheap there.
ANN_AUTO_THRESHOLD = 4096

#: modes accepted by :class:`RetrievalProfile`.
ANN_MODES = ("auto", "on", "off")

#: telemetry hook: ``(probes, shortlist_size, exact_fallback)``.
AnnTelemetry = Callable[[int, int, bool], None]


@dataclass(frozen=True)
class RetrievalProfile:
    """Per-request retrieval knobs, threaded from ``ExpandOptions``.

    ``ann`` selects the candidate-retrieval strategy: ``"off"`` forces the
    exact full-vocabulary scan, ``"on"`` forces probed retrieval whenever an
    index exists, and ``"auto"`` (the default) probes only once the
    vocabulary crosses :data:`ANN_AUTO_THRESHOLD`.  ``nprobe`` overrides the
    index's default number of probed lists.
    """

    ann: str = "auto"
    nprobe: int | None = None

    def validate(self) -> None:
        if self.ann not in ANN_MODES:
            raise ConfigurationError(
                f"ann must be one of {ANN_MODES}, got {self.ann!r}"
            )
        if self.nprobe is not None and self.nprobe < 1:
            raise ConfigurationError("nprobe must be >= 1 or None")

    def wants_ann(self, vocabulary_size: int) -> bool:
        """Whether probed retrieval applies at this vocabulary size."""
        if self.ann == "on":
            return True
        if self.ann == "off":
            return False
        return vocabulary_size >= ANN_AUTO_THRESHOLD


#: the default profile (exact below the auto threshold).
EXACT_PROFILE = RetrievalProfile()


class PartitionedIndex:
    """Coarse k-means partition of a row matrix for inner-product probes."""

    #: bumped when the on-disk layout changes.
    format_version = 1

    def __init__(
        self,
        ids: np.ndarray,
        centroids: np.ndarray,
        order: np.ndarray,
        offsets: np.ndarray,
        extent: float,
    ):
        #: entity id of each matrix row (row ``r`` of the indexed matrix).
        self.ids = np.asarray(ids, dtype=np.int64)
        #: list centroids in the lifted (D+1)-dimensional space.
        self.centroids = np.asarray(centroids, dtype=np.float64)
        #: row indices grouped by list, list ``j`` = ``order[offsets[j]:offsets[j+1]]``.
        self.order = np.asarray(order, dtype=np.int64)
        self.offsets = np.asarray(offsets, dtype=np.int64)
        #: max row norm used for the MIPS→L2 lift at build time.
        self.extent = float(extent)

    # -- introspection ---------------------------------------------------------
    @property
    def n_lists(self) -> int:
        return int(self.centroids.shape[0])

    def __len__(self) -> int:
        return int(self.ids.shape[0])

    def default_nprobe(self) -> int:
        """Probe enough lists to keep recall high by default: a quarter of
        the partition (at least 8 lists).  Callers escalate further when
        the shortlist comes back smaller than the ranking they must fill."""
        return min(self.n_lists, max(8, (self.n_lists + 3) // 4))

    # -- construction ----------------------------------------------------------
    @classmethod
    def build(
        cls,
        matrix: np.ndarray,
        ids: Sequence[int],
        n_lists: int | None = None,
        seed: int = 0,
        iterations: int = 8,
    ) -> "PartitionedIndex":
        """Partition ``matrix`` rows (deterministic for a given ``seed``)."""
        matrix = np.ascontiguousarray(np.asarray(matrix, dtype=np.float64))
        ids = np.asarray(list(ids), dtype=np.int64)
        n = matrix.shape[0]
        if ids.shape[0] != n:
            raise ConfigurationError(
                f"ann index: {ids.shape[0]} ids for {n} matrix rows"
            )
        if n == 0:
            return cls(
                ids=ids,
                centroids=np.zeros((0, matrix.shape[1] + 1 if matrix.ndim == 2 else 1)),
                order=np.zeros(0, dtype=np.int64),
                offsets=np.zeros(1, dtype=np.int64),
                extent=0.0,
            )
        # MIPS→L2 lift: argmax q·x over rows equals argmin ‖q' - x'‖ with
        # x' = [x, sqrt(extent² - ‖x‖²)] and q' = [q, 0].
        norms_sq = np.einsum("ij,ij->i", matrix, matrix)
        extent = float(np.sqrt(max(float(norms_sq.max()), 0.0)))
        lift = np.sqrt(np.maximum(extent * extent - norms_sq, 0.0))
        points = np.concatenate([matrix, lift[:, None]], axis=1)

        k = n_lists if n_lists is not None else int(np.ceil(np.sqrt(n)))
        k = max(1, min(int(k), n))
        rng = np.random.default_rng(seed)
        centroids = points[rng.choice(n, size=k, replace=False)].copy()
        assignment = np.zeros(n, dtype=np.int64)
        for _ in range(max(1, iterations)):
            assignment = cls._assign(points, centroids)
            counts = np.bincount(assignment, minlength=k)
            sums = np.zeros_like(centroids)
            np.add.at(sums, assignment, points)
            occupied = counts > 0
            centroids[occupied] = sums[occupied] / counts[occupied, None]
            empty = np.flatnonzero(~occupied)
            if empty.size:
                # reseed empty lists from random rows so every list stays
                # probeable (deterministic: the rng state is part of the build).
                centroids[empty] = points[rng.choice(n, size=empty.size)]
        assignment = cls._assign(points, centroids)
        order = np.argsort(assignment, kind="stable").astype(np.int64)
        counts = np.bincount(assignment, minlength=k)
        offsets = np.zeros(k + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        return cls(
            ids=ids, centroids=centroids, order=order, offsets=offsets, extent=extent
        )

    @staticmethod
    def _assign(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
        """Nearest centroid per row by L2 (‖c‖² - 2·p·c; ‖p‖² is constant)."""
        distance = np.einsum("ij,ij->i", centroids, centroids)[None, :] - 2.0 * (
            points @ centroids.T
        )
        return np.argmin(distance, axis=1)

    # -- probing ---------------------------------------------------------------
    def probe(self, query: np.ndarray, nprobe: int | None = None) -> np.ndarray:
        """Row indices of the ``nprobe`` lists nearest to ``query``.

        ``query`` lives in the original D-dimensional space; the lift
        coordinate of a query is 0 by construction.
        """
        if not len(self):
            return np.zeros(0, dtype=np.int64)
        count = self.default_nprobe() if nprobe is None else int(nprobe)
        count = max(1, min(count, self.n_lists))
        flat = np.asarray(query, dtype=np.float64).ravel()
        lifted = np.concatenate([flat, [0.0]])
        distance = np.einsum("ij,ij->i", self.centroids, self.centroids) - 2.0 * (
            self.centroids @ lifted
        )
        lists = np.argpartition(distance, count - 1)[:count]
        rows = [self.order[self.offsets[j]: self.offsets[j + 1]] for j in sorted(lists)]
        return np.concatenate(rows) if rows else np.zeros(0, dtype=np.int64)

    # -- persistence -----------------------------------------------------------
    def save(self, directory: str | Path) -> None:
        from repro.store.serialization import save_array, write_json_state

        directory = Path(directory)
        write_json_state(
            directory / "ann_index.json",
            {
                "format_version": self.format_version,
                "size": int(len(self)),
                "n_lists": self.n_lists,
                "extent": self.extent,
            },
        )
        save_array(directory / "ann_ids.npy", self.ids)
        save_array(directory / "ann_centroids.npy", self.centroids)
        save_array(directory / "ann_order.npy", self.order)
        save_array(directory / "ann_offsets.npy", self.offsets)

    @classmethod
    def load(cls, directory: str | Path, mmap: bool = True) -> "PartitionedIndex":
        from repro.store.serialization import load_array, read_json_state

        directory = Path(directory)
        meta = read_json_state(directory / "ann_index.json")
        if int(meta.get("format_version", -1)) != cls.format_version:
            raise ArtifactCorruptError(
                f"ann index format {meta.get('format_version')!r} is not "
                f"{cls.format_version}"
            )
        index = cls(
            ids=np.asarray(load_array(directory / "ann_ids.npy", mmap=mmap)),
            centroids=np.asarray(load_array(directory / "ann_centroids.npy", mmap=mmap)),
            order=np.asarray(load_array(directory / "ann_order.npy", mmap=mmap)),
            offsets=np.asarray(load_array(directory / "ann_offsets.npy", mmap=mmap)),
            extent=float(meta.get("extent", 0.0)),
        )
        if len(index) != int(meta.get("size", -1)):
            raise ArtifactCorruptError(
                f"ann index claims {meta.get('size')} rows, found {len(index)}"
            )
        if index.order.shape[0] != index.ids.shape[0]:
            raise ArtifactCorruptError("ann index order/ids length mismatch")
        if index.offsets.shape[0] != index.n_lists + 1:
            raise ArtifactCorruptError("ann index offsets/centroids mismatch")
        return index


class CandidateMatrix:
    """Entity vectors stacked once into a contiguous scoring matrix.

    Row order is the sorted entity-id order, so the layout is deterministic
    for a given vector map regardless of dict iteration order — gathering a
    subset of rows yields exactly the values the historical per-query
    ``np.stack`` produced for those entities (``l2_normalize`` is purely
    row-wise), which is what keeps ``ann=off`` rankings bitwise identical.
    """

    __slots__ = ("ids", "matrix", "row_of", "index", "_ids_array", "_ids_sorted")

    def __init__(
        self,
        ids: Sequence[int],
        matrix: np.ndarray,
        index: PartitionedIndex | None = None,
    ):
        self.ids: list[int] = [int(entity_id) for entity_id in ids]
        self.matrix = matrix
        self.row_of: dict[int, int] = {
            entity_id: row for row, entity_id in enumerate(self.ids)
        }
        self.index = index
        self._ids_array = np.asarray(self.ids, dtype=np.int64)
        self._ids_sorted = bool(
            self._ids_array.size == 0 or np.all(np.diff(self._ids_array) > 0)
        )

    @classmethod
    def from_vectors(
        cls,
        vectors: Mapping[int, np.ndarray],
        dim: int | None = None,
        normalize: bool = False,
    ) -> "CandidateMatrix":
        """Stack ``vectors`` (optionally sliced to ``dim`` and row-normalized)."""
        ids = sorted(vectors)
        if not ids:
            return cls(ids=[], matrix=np.zeros((0, 0), dtype=np.float64))
        rows = []
        for entity_id in ids:
            row = np.asarray(vectors[entity_id], dtype=np.float64)
            rows.append(row[:dim] if dim is not None else row)
        matrix = np.stack(rows)
        if normalize:
            matrix = l2_normalize(matrix, axis=1)
        return cls(ids=ids, matrix=np.ascontiguousarray(matrix))

    def __len__(self) -> int:
        return len(self.ids)

    def __contains__(self, entity_id: int) -> bool:
        return entity_id in self.row_of

    def row(self, entity_id: int) -> np.ndarray:
        """The (view of the) single row for ``entity_id``."""
        return self.matrix[self.row_of[entity_id]]

    def rows(self, entity_ids: Sequence[int]) -> np.ndarray:
        """Gather rows for ``entity_ids`` (callers filter to known ids)."""
        if len(entity_ids) == 0:
            return np.zeros((0, self.matrix.shape[1]), dtype=np.float64)
        return self.matrix[self.locate(entity_ids)]

    def locate(self, entity_ids: Sequence[int]) -> np.ndarray:
        """Row indices for ``entity_ids``; raises ``KeyError`` on unknown ids.

        With the usual ascending id layout the lookup is a vectorized binary
        search, so gathering a probed shortlist costs no per-id Python work;
        the gathered rows are bitwise identical either way (same locations).
        """
        if self._ids_sorted and self._ids_array.size:
            wanted = np.asarray(entity_ids, dtype=np.int64)
            locations = np.minimum(
                np.searchsorted(self._ids_array, wanted), self._ids_array.size - 1
            )
            found = self._ids_array[locations]
            if not np.array_equal(found, wanted):
                raise KeyError(int(wanted[found != wanted][0]))
            return locations
        return np.fromiter(
            (self.row_of[entity_id] for entity_id in entity_ids),
            dtype=np.int64,
            count=len(entity_ids),
        )

    def attach_index(self, index: PartitionedIndex | None) -> None:
        """Adopt ``index`` when its id layout matches this matrix; a stale
        index (different vocabulary) is dropped so probes can never return
        rows of a different matrix."""
        if index is not None and (
            len(index) != len(self.ids)
            or not np.array_equal(index.ids, np.asarray(self.ids, dtype=np.int64))
        ):
            index = None
        self.index = index

    # -- retrieval -------------------------------------------------------------
    def wants_probe(self, profile: RetrievalProfile) -> bool:
        """Whether a request with ``profile`` takes the probed path here.

        Callers use this to skip building the per-query exact candidate
        list entirely in probed mode (``shortlist(None, ...)``).
        """
        return (
            self.index is not None
            and len(self.index) > 0
            and profile.wants_ann(len(self.ids))
        )

    def universe(self, exclude: Sequence[int] = ()) -> list[int]:
        """The full vocabulary in id order, minus ``exclude`` (exact list)."""
        if not exclude:
            return list(self.ids)
        excluded = set(exclude)
        return [eid for eid in self.ids if eid not in excluded]

    def shortlist(
        self,
        candidates: list[int] | None,
        query_vector: np.ndarray,
        profile: RetrievalProfile,
        required: int = 0,
        telemetry: AnnTelemetry | None = None,
        exclude: Sequence[int] = (),
    ) -> list[int]:
        """The candidate subset to score exactly for one query.

        ``candidates=None`` means the whole indexed vocabulary — the fast
        path: probed lists need no intersection at all, only the ``exclude``
        ids (a query's seeds) are dropped, so per-query work is proportional
        to the shortlist, not the vocabulary.  Exact mode (or no index)
        returns ``candidates`` untouched (the vocabulary minus ``exclude``
        when ``candidates`` is ``None``).  Probed mode intersects the probed
        lists with the candidates — a vectorized sorted-set intersection —
        escalating ``nprobe`` (doubling) until the shortlist can fill a
        ranking of ``required`` entries, and falls back to the exact scan
        when even a full probe cannot (counted as an exact fallback).
        """
        index = self.index
        if index is None or not profile.wants_ann(len(self.ids)):
            return candidates if candidates is not None else self.universe(exclude)
        if not len(index):
            fallback = candidates if candidates is not None else self.universe(exclude)
            if telemetry is not None:
                telemetry(0, len(fallback), True)
            return fallback
        candidate_array = (
            np.asarray(candidates, dtype=np.int64) if candidates is not None else None
        )
        exclude_array = None
        if len(exclude):
            exclude_array = np.fromiter(
                sorted({int(eid) for eid in exclude}), dtype=np.int64
            )
        nprobe = profile.nprobe if profile.nprobe is not None else index.default_nprobe()
        nprobe = max(1, min(int(nprobe), index.n_lists))
        need = max(0, int(required))
        while True:
            probed = np.sort(index.ids[index.probe(query_vector, nprobe)])
            if candidate_array is not None:
                # both sides are unique id sets; candidates come in ascending
                # id order from the expanders, so the sorted intersection
                # preserves their order.
                short = np.intersect1d(candidate_array, probed, assume_unique=True)
            else:
                short = probed
            if exclude_array is not None:
                short = short[~np.isin(short, exclude_array, assume_unique=True)]
            if short.size >= need or nprobe >= index.n_lists:
                break
            nprobe = min(index.n_lists, nprobe * 2)
        if need and short.size < need:
            # even the full partition cannot fill the ranking (candidates
            # outside the index, e.g. after vocabulary drift): score exactly.
            fallback = candidates if candidates is not None else self.universe(exclude)
            if telemetry is not None:
                telemetry(nprobe, len(fallback), True)
            return fallback
        if telemetry is not None:
            telemetry(nprobe, int(short.size), False)
        return short.tolist()
