"""The GenExpan pipeline (Section V-B).

Phases per query: (optionally) chain-of-thought reasoning, iterative entity
generation + selection with the prefix-constrained causal LM, and segmented
re-ranking with the negative seed entities (identical to RetExpan's
re-ranking except that the negative similarity uses the LM's conditional
probabilities instead of encoder cosine similarities).
"""

from __future__ import annotations

from pathlib import Path

from repro.config import GenExpanConfig
from repro.core.base import Expander
from repro.core.rerank import segmented_rerank
from repro.core.resources import SharedResources
from repro.dataset.ultrawiki import UltraWikiDataset
from repro.exceptions import ExpansionError, PersistenceError
from repro.genexpan.cot import ChainOfThoughtReasoner, ConceptMatcher
from repro.genexpan.generation import IterativeGenerator
from repro.lm.causal_lm import CausalEntityLM
from repro.substrate import CAUSAL_LM
from repro.types import ExpansionResult, Query


class GenExpan(Expander):
    """Generation-based Ultra-ESE with negative seed entities."""

    supports_persistence = True
    #: v2: the causal LM moved out of the method artifact into a referenced,
    #: content-addressed substrate artifact.
    state_version = 2

    def __init__(
        self,
        config: GenExpanConfig | None = None,
        resources: SharedResources | None = None,
        name: str | None = None,
    ):
        super().__init__()
        self.config = config or GenExpanConfig()
        self.config.validate()
        self._resources = resources
        self._lm: CausalEntityLM | None = None
        self._generator: IterativeGenerator | None = None
        self._reasoner: ChainOfThoughtReasoner | None = None
        if name is not None:
            self.name = name
        else:
            self.name = "GenExpan + CoT" if self.config.cot_mode != "none" else "GenExpan"

    # -- fitting ------------------------------------------------------------------
    def _fit(self, dataset: UltraWikiDataset) -> None:
        resources = self._resources or SharedResources(
            dataset, causal_lm_config=self.config.lm, oracle_config=self.config.oracle
        )
        self._resources = resources
        lm = resources.causal_lm(further_pretrain=self.config.use_further_pretrain)
        self._bind(dataset, lm)

    def _bind(self, dataset: UltraWikiDataset, lm: CausalEntityLM) -> None:
        """Assemble the per-dataset machinery around an already-fitted LM."""
        self._lm = lm
        concept_matcher = None
        self._reasoner = None
        if self.config.cot_mode != "none":
            concept_matcher = ConceptMatcher(dataset)
            self._reasoner = ChainOfThoughtReasoner(
                dataset, self._resources.oracle(), mode=self.config.cot_mode
            )
        self._generator = IterativeGenerator(
            dataset=dataset,
            lm=lm,
            prefix_tree=self._resources.prefix_tree(),
            concept_matcher=concept_matcher,
            num_iterations=self.config.num_iterations,
            beam_width=self.config.beam_width,
            selected_per_iteration=self.config.selected_per_iteration,
            use_prefix_constraint=self.config.use_prefix_constraint,
            seed=self.config.lm.seed,
        )

    # -- persistence ---------------------------------------------------------------
    def substrate_dependencies(self) -> list[tuple[str, dict]]:
        """The (continually pre-trained) causal LM this fit stands on."""
        if self._resources is None:
            return []
        return [
            (
                CAUSAL_LM,
                self._resources.causal_lm_params(
                    further_pretrain=self.config.use_further_pretrain
                ),
            )
        ]

    def _save_state(self, directory: Path) -> None:
        # The LM substrate is *referenced* via the manifest (see
        # substrate_dependencies), not embedded; only the ablation arms the
        # restore must agree on are method-private state.
        from repro.store.serialization import write_json_state

        write_json_state(
            directory / "genexpan.json",
            {
                "cot_mode": self.config.cot_mode,
                "use_further_pretrain": self.config.use_further_pretrain,
            },
        )

    def _load_state(self, directory: Path, dataset: UltraWikiDataset) -> None:
        """Restore the expensive LM from its substrate artifact; the prefix
        tree, concept matcher, and reasoner are cheap and rebuilt from the
        dataset."""
        from repro.store.serialization import read_json_state

        meta = read_json_state(directory / "genexpan.json")
        if bool(meta.get("use_further_pretrain")) != self.config.use_further_pretrain:
            # The saved LM was trained under the other pre-training regime;
            # serving it would silently answer for a different configuration.
            raise PersistenceError(
                "saved GenExpan state and this configuration disagree on "
                "use_further_pretrain; refit instead of restoring"
            )
        self._resources = self._resources or SharedResources(
            dataset, causal_lm_config=self.config.lm, oracle_config=self.config.oracle
        )
        lm = self._resolve_substrate(
            CAUSAL_LM,
            self._resources.causal_lm_params(
                further_pretrain=self.config.use_further_pretrain
            ),
        )
        self._bind(dataset, lm)

    # -- expansion ------------------------------------------------------------------
    def _expand(self, query: Query, top_k: int) -> ExpansionResult:
        if self._generator is None:
            raise ExpansionError("GenExpan is not fitted")
        cot_info = self._reasoner.reason(query) if self._reasoner is not None else None
        ranked = self._generator.run(query, cot=cot_info)
        result = ExpansionResult.from_scores(query.query_id, ranked)

        if self.config.use_negative_rerank and query.negative_seed_ids:
            # Negative-seed similarity contrasted against positive-seed
            # similarity: subtracting the positive term cancels the
            # fine-grained-class commonality so the re-ranking key reflects
            # the negative attribute only.  Both terms are scored as one LM
            # batch over the whole expansion list.
            list_ids = [item.entity_id for item in result.ranking]
            negative = self._lm.conditional_similarity_batch(
                list_ids, query.negative_seed_ids
            )
            positive = self._lm.conditional_similarity_batch(
                list_ids, query.positive_seed_ids
            )
            result = segmented_rerank(
                result,
                negative_score=lambda entity_id: (
                    negative[entity_id] - positive[entity_id]
                ),
                segment_length=self.config.segment_length,
            )
        return result

    # -- introspection -----------------------------------------------------------------
    @property
    def reasoner(self) -> ChainOfThoughtReasoner | None:
        return self._reasoner
