"""Iterative entity generation and selection for GenExpan (Section V-B.1).

One expansion round:

1. **Entity generation** — a prompt is built from 3 entities (all positive
   seeds in the first round; 2 seeds + 1 already-expanded entity afterwards)
   and the causal LM generates ``beam_width`` candidate entities via
   prefix-tree constrained beam search.  With the constraint disabled the LM
   free-runs and most generations are not valid candidate entities.
2. **Entity selection** — each generated entity is scored by the mean
   conditional probability of the positive seed entities given the template
   "{entity} is similar to" (Eq. 8, geometric mean over seed tokens),
   optionally biased by the chain-of-thought concept scores, and the top
   entities join the current expansion.

Rounds repeat until the expansion budget is reached.
"""

from __future__ import annotations

from repro.dataset.ultrawiki import UltraWikiDataset
from repro.exceptions import ExpansionError
from repro.genexpan.cot import ConceptMatcher, CoTInfo
from repro.lm.causal_lm import CausalEntityLM
from repro.text.prefix_tree import PrefixTree
from repro.types import Query
from repro.utils.rng import RandomState

#: weight of the chain-of-thought concept bias in the selection score.
_COT_CLASS_WEIGHT = 0.1
_COT_POSITIVE_WEIGHT = 0.3
_COT_NEGATIVE_WEIGHT = 0.3


class IterativeGenerator:
    """Runs the generate-and-select loop for one query."""

    def __init__(
        self,
        dataset: UltraWikiDataset,
        lm: CausalEntityLM,
        prefix_tree: PrefixTree,
        concept_matcher: ConceptMatcher | None = None,
        num_iterations: int = 6,
        beam_width: int = 20,
        selected_per_iteration: int = 20,
        use_prefix_constraint: bool = True,
        seed: int = 31,
    ):
        if num_iterations <= 0 or beam_width <= 0 or selected_per_iteration <= 0:
            raise ExpansionError("iteration parameters must be positive")
        self.dataset = dataset
        self.lm = lm
        self.prefix_tree = prefix_tree
        self.concept_matcher = concept_matcher
        self.num_iterations = num_iterations
        self.beam_width = beam_width
        self.selected_per_iteration = selected_per_iteration
        self.use_prefix_constraint = use_prefix_constraint
        self._rng = RandomState(seed)
        self._lowercase_names = {
            entity.name.lower(): entity.name for entity in dataset.entities()
        }

    # -- prompt construction -------------------------------------------------------
    def _prompt_entities(
        self, query: Query, expansion: list[int], iteration: int, rng: RandomState
    ) -> list[int]:
        """3 prompt entities: seeds only in round 0, 2 seeds + 1 expanded after."""
        positive_seeds = list(query.positive_seed_ids)
        if iteration == 0 or not expansion:
            count = min(3, len(positive_seeds))
            return rng.sample(positive_seeds, count)
        seeds = rng.sample(positive_seeds, min(2, len(positive_seeds)))
        expanded = rng.sample(expansion, 1)
        return seeds + expanded

    # -- generation -------------------------------------------------------------------
    def _generate_names(
        self, prompt_ids: list[int], exclude_names: set[str]
    ) -> list[str]:
        if self.use_prefix_constraint:
            generated = self.lm.generate_constrained(
                prompt_ids,
                self.prefix_tree,
                beam_width=self.beam_width,
                exclude_names=exclude_names,
            )
            return [name for name, _ in generated]
        generated = self.lm.generate_unconstrained(
            prompt_ids, beam_width=self.beam_width
        )
        # Without the constraint many generations are not candidate entities;
        # keep only the valid ones (the rest are wasted generation budget).
        names = []
        for name, _ in generated:
            if name in exclude_names:
                continue
            matched = self._match_candidate_name(name)
            if matched is not None and matched not in exclude_names:
                names.append(matched)
        return names

    def _match_candidate_name(self, generated_text: str) -> str | None:
        """Map free-form generated text back to a candidate entity name, if any."""
        return self._lowercase_names.get(generated_text.lower())

    # -- selection ---------------------------------------------------------------------
    def _selection_score(
        self, entity_id: int, query: Query, cot: CoTInfo | None, base: float
    ) -> float:
        """Eq. 8 selection score; ``base`` is the batched mean conditional
        similarity to the positive seeds (one LM batch per iteration instead
        of one sequence walk per generated-entity/seed pair)."""
        seeds = query.positive_seed_ids
        if not seeds:
            return 0.0
        if cot is None or cot.is_empty() or self.concept_matcher is None:
            return base
        bias = 0.0
        if cot.class_name:
            bias += _COT_CLASS_WEIGHT * self.concept_matcher.score(entity_id, cot.class_name)
        if cot.positive_phrases:
            bias += _COT_POSITIVE_WEIGHT * self.concept_matcher.mean_score(
                entity_id, cot.positive_phrases
            )
        if cot.negative_phrases:
            bias -= _COT_NEGATIVE_WEIGHT * self.concept_matcher.mean_score(
                entity_id, cot.negative_phrases
            )
        return base + bias

    # -- main loop ----------------------------------------------------------------------
    def run(self, query: Query, cot: CoTInfo | None = None) -> list[tuple[int, float]]:
        """Run the iterative expansion; returns (entity_id, score) in rank order."""
        rng = self._rng.child(query.query_id)
        seed_names = {
            self.dataset.entity(eid).name
            for eid in (*query.positive_seed_ids, *query.negative_seed_ids)
        }
        expansion: list[int] = []
        scores: dict[int, float] = {}

        for iteration in range(self.num_iterations):
            prompt_ids = self._prompt_entities(query, expansion, iteration, rng.child(iteration))
            exclude = seed_names | {self.dataset.entity(eid).name for eid in expansion}
            names = self._generate_names(prompt_ids, exclude)
            generated_ids = [
                self.dataset.entity_by_name(name).entity_id
                for name in names
                if self.dataset.has_entity_name(name)
            ]
            base_scores = self.lm.conditional_similarity_batch(
                generated_ids, query.positive_seed_ids
            )
            scored = [
                (eid, self._selection_score(eid, query, cot, base_scores[eid]))
                for eid in generated_ids
            ]
            scored.sort(key=lambda item: (-item[1], item[0]))
            for entity_id, score in scored[: self.selected_per_iteration]:
                if entity_id not in scores:
                    expansion.append(entity_id)
                scores[entity_id] = max(scores.get(entity_id, -float("inf")), score)

        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        return ranked
