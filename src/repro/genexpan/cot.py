"""Chain-of-thought reasoning for GenExpan (Section V-B.2, Table VIII).

Before generating entities, the model first reasons about (a) the
fine-grained class name of the positive seeds, (b) the positive attribute
values they share and, optionally, (c) the negative attribute values that
distinguish the negative seeds.  That reasoning is then injected into the
generation prompt.

In this reproduction the reasoning outputs are produced either by the
simulated GPT-4/LLaMA oracle ("Gen" rows of Table VIII: noisy, long-tail
errors) or taken from the dataset's ground-truth annotations ("GT" rows).
The reasoning is consumed through a :class:`ConceptMatcher`: every reasoning
phrase is scored against each candidate entity by lexical overlap with the
candidate's context sentences, and the resulting concept score biases the
entity-selection stage — the corpus-level analogue of the LLM reading the
augmented prompt.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.dataset.ultrawiki import UltraWikiDataset
from repro.exceptions import ExpansionError
from repro.kb.schema import ClassSchema, schema_by_name
from repro.lm.oracle import OracleLLM
from repro.text.tokenizer import WordTokenizer
from repro.types import Query

#: tokens too generic to carry attribute signal.
_STOPWORDS = frozenset(
    "the a an is are was were of in on at to by with and or for its it this "
    "that as from not no".split()
)


@dataclass
class CoTInfo:
    """The reasoning produced for one query."""

    class_name: str | None = None
    positive_phrases: list[str] = field(default_factory=list)
    negative_phrases: list[str] = field(default_factory=list)

    def is_empty(self) -> bool:
        return not (self.class_name or self.positive_phrases or self.negative_phrases)


class ConceptMatcher:
    """Scores candidate entities against reasoning phrases by lexical overlap.

    Phrase tokens are weighted by inverse document frequency so that the
    attribute-bearing words ("android", "coastal", ...) dominate the score
    and the template filler ("operating", "system", ...) barely matters.
    """

    def __init__(self, dataset: UltraWikiDataset):
        self._tokenizer = WordTokenizer()
        self._entity_tokens: dict[int, set[str]] = {}
        document_frequency: dict[str, int] = {}
        for entity in dataset.entities():
            tokens: set[str] = set()
            for sentence in dataset.corpus.sentences_of(entity.entity_id):
                tokens.update(
                    t
                    for t in self._tokenizer.tokenize(sentence.text)
                    if t not in _STOPWORDS
                )
            self._entity_tokens[entity.entity_id] = tokens
            for token in tokens:
                document_frequency[token] = document_frequency.get(token, 0) + 1
        num_entities = max(len(self._entity_tokens), 1)
        self._idf = {
            token: math.log((1.0 + num_entities) / (1.0 + df))
            for token, df in document_frequency.items()
        }
        self._default_idf = math.log(1.0 + num_entities)

    def _phrase_weights(self, phrase: str) -> dict[str, float]:
        return {
            token: self._idf.get(token, self._default_idf)
            for token in self._tokenizer.tokenize(phrase)
            if token not in _STOPWORDS
        }

    def score(self, entity_id: int, phrase: str) -> float:
        """IDF-weighted fraction of the phrase's tokens found in the entity's contexts."""
        weights = self._phrase_weights(phrase)
        if not weights:
            return 0.0
        entity_tokens = self._entity_tokens.get(entity_id, set())
        matched = sum(weight for token, weight in weights.items() if token in entity_tokens)
        return matched / sum(weights.values())

    def score_batch(self, entity_ids: list[int], phrase: str) -> list[float]:
        """:meth:`score` for one phrase across many entities.

        The phrase is tokenized and IDF-weighted once instead of per
        candidate; per-entity values are identical to sequential ``score``
        calls (same weight dict, same summation order).
        """
        weights = self._phrase_weights(phrase)
        if not weights:
            return [0.0 for _ in entity_ids]
        total = sum(weights.values())
        items = list(weights.items())
        scores = []
        for entity_id in entity_ids:
            entity_tokens = self._entity_tokens.get(entity_id, set())
            matched = sum(weight for token, weight in items if token in entity_tokens)
            scores.append(matched / total)
        return scores

    def mean_score(self, entity_id: int, phrases: list[str]) -> float:
        if not phrases:
            return 0.0
        return sum(self.score(entity_id, phrase) for phrase in phrases) / len(phrases)


class ChainOfThoughtReasoner:
    """Produces :class:`CoTInfo` for a query according to the configured mode.

    Modes follow Table VIII: ``gt_class``, ``gen_class``, ``gen_class_gen_pos``,
    ``gen_class_gt_pos``, ``gen_class_gen_pos_gen_neg`` and
    ``gen_class_gt_pos_gt_neg``; ``none`` disables reasoning.
    """

    VALID_MODES = (
        "none",
        "gt_class",
        "gen_class",
        "gen_class_gen_pos",
        "gen_class_gt_pos",
        "gen_class_gen_pos_gen_neg",
        "gen_class_gt_pos_gt_neg",
    )

    def __init__(self, dataset: UltraWikiDataset, oracle: OracleLLM, mode: str = "none"):
        if mode not in self.VALID_MODES:
            raise ExpansionError(f"unknown chain-of-thought mode {mode!r}")
        self.dataset = dataset
        self.oracle = oracle
        self.mode = mode

    # -- phrase helpers ----------------------------------------------------------
    def _schema(self, query: Query) -> ClassSchema:
        fine_class = self.dataset.ultra_class(query.class_id).fine_class
        return schema_by_name(fine_class)

    def _assignment_phrases(self, query: Query, assignment: dict[str, str]) -> list[str]:
        """Turn an attribute assignment into natural-language phrases."""
        schema = self._schema(query)
        phrases = []
        for attribute, value in sorted(assignment.items()):
            try:
                phrases.append(schema.phrase(attribute, value))
            except Exception:  # unknown value (oracle confusion): keep raw text
                phrases.append(f"{attribute} {value}")
        return phrases

    # -- reasoning --------------------------------------------------------------------
    def reason(self, query: Query) -> CoTInfo:
        """Produce the reasoning for one query according to ``self.mode``."""
        if self.mode == "none":
            return CoTInfo()
        ultra = self.dataset.ultra_class(query.class_id)
        schema = self._schema(query)
        info = CoTInfo()

        if self.mode == "gt_class":
            info.class_name = schema.description
            return info
        if self.mode == "gen_class":
            info.class_name = self.oracle.infer_class_name(query.positive_seed_ids)
            return info

        # All remaining modes use a generated class name plus attribute reasoning.
        if not self.mode.startswith("gen_class_"):
            raise ExpansionError(f"unknown chain-of-thought mode {self.mode!r}")
        info.class_name = self.oracle.infer_class_name(query.positive_seed_ids)

        if "gt_pos" in self.mode:
            info.positive_phrases = self._assignment_phrases(
                query, dict(ultra.positive_assignment)
            )
        elif "gen_pos" in self.mode:
            inferred = self.oracle.infer_positive_attributes(query.positive_seed_ids)
            info.positive_phrases = self._assignment_phrases(query, inferred)

        if "gt_neg" in self.mode:
            info.negative_phrases = self._assignment_phrases(
                query, dict(ultra.negative_assignment)
            )
        elif "gen_neg" in self.mode:
            inferred = self.oracle.infer_negative_attributes(
                query.positive_seed_ids, query.negative_seed_ids
            )
            info.negative_phrases = self._assignment_phrases(query, inferred)
        return info
