"""Prompt templates used by GenExpan.

The paper's supplementary notes give the exact prompts; these templates keep
the same structure (a list of example entities, optionally preceded by the
chain-of-thought reasoning about the class name and attributes, followed by a
blank to be completed by the LM).  The numpy causal LM consumes the entity
names in the prompt as its context tokens, so the textual template mostly
matters for documentation, examples, and the case-study output.
"""

from __future__ import annotations

from typing import Sequence

#: template used by the entity-selection score (Eq. 8).
SIMILARITY_TEMPLATE = "{entity} is similar to"

_GENERATION_TEMPLATE = (
    "The following entities belong to the same semantic class: {entities}. "
    "Another entity of this class is"
)

_GENERATION_WITH_COT_TEMPLATE = (
    "The semantic class is {class_name}. "
    "Its members share these attributes: {positive_attributes}. "
    "{negative_clause}"
    "The following entities belong to this class: {entities}. "
    "Another entity of this class is"
)

_COT_TEMPLATE = (
    "Given the positive seed entities {positives} and the negative seed "
    "entities {negatives}, first state the fine-grained class name, then the "
    "attribute values shared by the positive seeds, then the attribute values "
    "that distinguish the negative seeds."
)


def build_generation_prompt(
    entity_names: Sequence[str],
    class_name: str | None = None,
    positive_attributes: Sequence[str] = (),
    negative_attributes: Sequence[str] = (),
) -> str:
    """The Prompt_g of Section V-B, optionally augmented with CoT reasoning."""
    entities = ", ".join(entity_names)
    if class_name is None and not positive_attributes and not negative_attributes:
        return _GENERATION_TEMPLATE.format(entities=entities)
    negative_clause = (
        "Members must NOT have these attributes: "
        + "; ".join(negative_attributes)
        + ". "
        if negative_attributes
        else ""
    )
    return _GENERATION_WITH_COT_TEMPLATE.format(
        class_name=class_name or "the target semantic class",
        positive_attributes="; ".join(positive_attributes) or "(unspecified)",
        negative_clause=negative_clause,
        entities=entities,
    )


def build_cot_prompt(positive_names: Sequence[str], negative_names: Sequence[str]) -> str:
    """The chain-of-thought elicitation prompt."""
    return _COT_TEMPLATE.format(
        positives=", ".join(positive_names), negatives=", ".join(negative_names)
    )


def build_similarity_prompt(entity_name: str) -> str:
    """The conditional-probability template of Eq. 8."""
    return SIMILARITY_TEMPLATE.format(entity=entity_name)
