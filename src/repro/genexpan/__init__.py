"""GenExpan: the generation-based Ultra-ESE framework (Section V-B)."""

from repro.genexpan.prompts import (
    build_generation_prompt,
    build_cot_prompt,
    SIMILARITY_TEMPLATE,
)
from repro.genexpan.cot import ChainOfThoughtReasoner, ConceptMatcher, CoTInfo
from repro.genexpan.generation import IterativeGenerator
from repro.genexpan.pipeline import GenExpan

__all__ = [
    "build_generation_prompt",
    "build_cot_prompt",
    "SIMILARITY_TEMPLATE",
    "ChainOfThoughtReasoner",
    "ConceptMatcher",
    "CoTInfo",
    "IterativeGenerator",
    "GenExpan",
]
