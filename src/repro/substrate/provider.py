"""Fit-once model substrates shared across every expansion method.

The paper's methods all stand on a small set of expensive shared substrates:

* the PPMI-SVD **co-occurrence embeddings** (CGExpan, CaSE, and the context
  encoder's pre-trained token vectors);
* the context-encoder **entity representations** (RetExpan's hidden-state
  vectors and ProbExpan's mask distributions);
* the continually pre-trained **causal entity LM** (GenExpan's backbone).

Before this layer each expander fitted its own private copy and persisted it
whole inside its method artifact, so a fleet serving all seven methods paid
the same substrate cost up to 7x in fit time, memory, and store bytes.  The
:class:`SubstrateProvider` fits each substrate **at most once per dataset**,
keyed by ``(kind, dataset fingerprint, params hash)``:

* an in-memory cache hands the same instance to every resident expander;
* with an :class:`~repro.store.ArtifactStore` attached, a miss first tries
  to *restore* the substrate from its content-addressed artifact
  (``<store>/.substrates/<kind>/<content hash>.v<N>``) and a fresh fit is
  written through so sibling processes and restarts skip it;
* cold fits are guarded by the same :class:`~repro.store.FitLock`
  single-payer election the method registry uses, so a cluster sharing one
  store trains each substrate exactly once.

The *substrate persistence protocol* is intentionally tiny: a substrate is
any object that can write its fitted state into a directory and be
reconstructed from it bitwise-identically —
:class:`~repro.lm.embeddings.CooccurrenceEmbeddings` (``save``/``load``),
:class:`~repro.lm.context_encoder.EntityRepresentations` (``save``/``load``),
and :class:`~repro.lm.causal_lm.CausalEntityLM`
(``save_state``/``load_state``) implement it; the per-kind adapters below
bind the three shapes to one provider interface.  The raw
:class:`~repro.lm.context_encoder.ContextEncoder` is a *memory-only*
substrate: it is only needed to produce an entity-representations substrate,
so it is cached per provider but never persisted on its own.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol

from repro.config import CausalLMConfig, EncoderConfig
from repro.dataset.ultrawiki import UltraWikiDataset
from repro.exceptions import StoreError, SubstrateError
from repro.lm.causal_lm import CausalEntityLM
from repro.lm.context_encoder import ContextEncoder, EntityRepresentations
from repro.lm.embeddings import CooccurrenceEmbeddings
from repro.obs import MetricsRegistry, span
from repro.store.fitlock import DEFAULT_STALE_SECONDS, FitLock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from pathlib import Path

    from repro.store import ArtifactStore

#: PPMI-SVD token + entity embeddings over the dataset corpus.
COOCCURRENCE_EMBEDDINGS = "cooccurrence_embeddings"
#: context-encoder hidden-state / distribution representations per entity.
ENTITY_REPRESENTATIONS = "entity_representations"
#: the (continually pre-trained) causal entity LM.
CAUSAL_LM = "causal_lm"
#: IVF-style partitioned ANN index over one entity vector map.
ANN_INDEX = "ann_index"

#: every persistable substrate kind, in dependency order (embeddings feed
#: the encoder that produces the representations; ANN indexes partition the
#: vector map of whichever substrate they reference).
SUBSTRATE_KINDS = (
    COOCCURRENCE_EMBEDDINGS,
    ENTITY_REPRESENTATIONS,
    CAUSAL_LM,
    ANN_INDEX,
)

#: hex digits kept from the sha256 digests used in keys and content hashes.
_HASH_CHARS = 16


class Substrate(Protocol):  # pragma: no cover - structural typing only
    """The persistence contract a substrate object must satisfy.

    Concretely: it can serialise its fitted state into a directory and a
    module-level loader can rebuild a bitwise-identical instance from that
    directory (plus the dataset).  The provider's per-kind adapters map the
    three real substrate classes onto this shape.
    """

    def save(self, directory: "str | Path") -> None: ...


def hash_params(params: dict) -> str:
    """Deterministic short hash of a JSON-native substrate parameter dict."""
    try:
        canonical = json.dumps(params, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise SubstrateError(f"substrate params are not JSON-serialisable: {exc}") from exc
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:_HASH_CHARS]


def cooccurrence_params_from_encoder(config: EncoderConfig) -> dict:
    """The co-occurrence substrate parameters an encoder config implies.

    Mirrors exactly how the shared resource pool has always constructed
    :class:`CooccurrenceEmbeddings` (constructor defaults resolved so the
    hash is stable even if those defaults later grow new spellings).
    """
    return {
        "dim": config.embedding_dim,
        "window": 6,
        "seed": config.seed,
        "entity_dim": 3 * config.embedding_dim,
    }


def entity_representation_params(config: EncoderConfig, trained: bool) -> dict:
    """Parameters of an entity-representations substrate (encoder + arm)."""
    return {"encoder": _encoder_dict(config), "trained": bool(trained)}


def causal_lm_params(config: CausalLMConfig, further_pretrain: bool) -> dict:
    """Parameters of a causal-LM substrate (config with the ablation arm applied)."""
    return {**config.__dict__, "further_pretrain": bool(further_pretrain)}


def ann_index_params(
    source_kind: str,
    source_params: dict,
    field: str = "entity",
    dim: int | None = None,
    normalize: bool = False,
    n_lists: int | None = None,
    seed: int = 0,
) -> dict:
    """Parameters of an ANN-index substrate.

    The index content-addresses everything that shapes its layout: the
    source substrate (kind + params), which vector map of it is indexed
    (``field``: ``"entity"`` embeddings, encoder ``"hidden"`` states, or
    mask ``"distribution"`` vectors), the dimension slice and row
    normalization the consuming ranker applies, and the partition geometry.
    """
    if field not in ("entity", "hidden", "distribution"):
        raise SubstrateError(f"unknown ann index field {field!r}")
    return {
        "source": {"kind": source_kind, "params": source_params},
        "field": field,
        "dim": dim,
        "normalize": bool(normalize),
        "n_lists": n_lists,
        "seed": int(seed),
    }


def _encoder_dict(config: EncoderConfig) -> dict:
    return dict(config.__dict__)


@dataclass(frozen=True)
class SubstrateKey:
    """Identity of one fitted substrate: what it is, on what data, and how."""

    kind: str
    fingerprint: str
    params_hash: str

    @property
    def content_hash(self) -> str:
        """The content address of this substrate's artifact.

        Derived from the full key, so two substrates fitted with identical
        code paths share one artifact and anything differing in kind,
        dataset, or parameters can never collide.
        """
        digest = hashlib.sha256(
            f"{self.kind}\n{self.fingerprint}\n{self.params_hash}".encode("utf-8")
        )
        return digest.hexdigest()[:_HASH_CHARS]

    def to_ref(self) -> dict:
        """The manifest reference a method artifact stores for this substrate."""
        return {
            "kind": self.kind,
            "content_hash": self.content_hash,
            "params_hash": self.params_hash,
        }


class SubstrateProvider:
    """Fits, caches, persists, and shares substrates for one dataset."""

    def __init__(
        self,
        dataset: UltraWikiDataset,
        store: "ArtifactStore | None" = None,
        fit_lock: bool = True,
        fit_lock_wait_seconds: float = 600.0,
        fit_lock_stale_seconds: float = DEFAULT_STALE_SECONDS,
    ):
        self.dataset = dataset
        self.store = store
        self.fit_lock_wait_seconds = fit_lock_wait_seconds
        self.fit_lock_stale_seconds = fit_lock_stale_seconds
        self._fit_lock_wanted = bool(fit_lock)
        self._fingerprint: str | None = None
        self._lock = threading.Lock()
        #: SubstrateKey -> fitted substrate instance (the shared copies).
        self._cache: dict[SubstrateKey, object] = {}
        #: per-key fit locks so concurrent requests fit each substrate once.
        self._key_locks: dict[SubstrateKey, threading.Lock] = {}
        #: memory-only context encoders keyed by (encoder params hash, trained).
        self._encoders: dict[tuple[str, bool], ContextEncoder] = {}
        self.metrics = MetricsRegistry()
        self._bind_instruments(self.metrics)
        #: wall-clock seconds of the most recent fit / restore per kind.
        self._fit_seconds: dict[str, float] = {}
        self._restore_seconds: dict[str, float] = {}

    def _bind_instruments(self, metrics: MetricsRegistry) -> None:
        self._hits = metrics.counter(
            "repro_substrate_hits_total", "Substrate lookups served a resident copy."
        )
        self._misses = metrics.counter(
            "repro_substrate_misses_total", "Substrate lookups that required a fit."
        )
        self._fits = metrics.counter(
            "repro_substrate_fits_total", "Substrate fits paid by this process."
        )
        self._restores = metrics.counter(
            "repro_substrate_restores_total", "Substrates restored from artifacts."
        )
        self._publishes = metrics.counter(
            "repro_substrate_publishes_total", "Substrate artifacts published."
        )
        self._store_errors = metrics.counter(
            "repro_substrate_store_errors_total", "Store failures absorbed."
        )
        self._fit_lock_acquires = metrics.counter(
            "repro_substrate_fitlock_acquires_total", "Cross-process fit-lock wins."
        )
        self._fit_lock_waits = metrics.counter(
            "repro_substrate_fitlock_waits_total", "Waits behind another fit leader."
        )
        self._fit_lock_restores = metrics.counter(
            "repro_substrate_fitlock_restores_total",
            "Restores of a leader-published substrate after a wait.",
        )
        self._fit_lock_timeouts = metrics.counter(
            "repro_substrate_fitlock_timeouts_total",
            "Local fallback fits after a stuck leader exceeded the wait budget.",
        )
        self._resident = metrics.gauge(
            "repro_substrate_resident", "Distinct substrate instances in memory."
        )
        self._ann_queries = metrics.counter(
            "repro_ann_queries_total", "Expand queries answered via a probed ANN shortlist."
        )
        self._ann_probes = metrics.counter(
            "repro_ann_probes_total", "ANN index lists probed across all queries."
        )
        self._ann_shortlist = metrics.counter(
            "repro_ann_shortlist_total",
            "Candidates exact-rescored from probed shortlists (sum of sizes).",
        )
        self._ann_fallbacks = metrics.counter(
            "repro_ann_exact_fallbacks_total",
            "Probed queries that fell back to the exact full-vocabulary scan.",
        )

    def attach_metrics(self, metrics: MetricsRegistry) -> None:
        """Re-home this provider's instruments onto ``metrics``.

        Called by the serving registry so substrate counters render on the
        service's ``/v1/metrics`` alongside everything else.  Values counted
        before the attach (an injected, pre-warmed provider) are replayed
        into the new registry so no traffic is lost; idempotent for the
        registry already attached.
        """
        if metrics is self.metrics:
            return
        with self._lock:
            previous = {
                name: instrument.total()
                for name, instrument in vars(self).items()
                if name
                in (
                    "_hits",
                    "_misses",
                    "_fits",
                    "_restores",
                    "_publishes",
                    "_store_errors",
                    "_fit_lock_acquires",
                    "_fit_lock_waits",
                    "_fit_lock_restores",
                    "_fit_lock_timeouts",
                    "_ann_queries",
                    "_ann_probes",
                    "_ann_shortlist",
                    "_ann_fallbacks",
                )
            }
            resident = len(self._cache)
            self.metrics = metrics
            self._bind_instruments(metrics)
            for name, total in previous.items():
                if total:
                    getattr(self, name).inc(total)
            self._resident.set(resident)

    # -- identity ----------------------------------------------------------------
    @property
    def fit_lock_enabled(self) -> bool:
        return self._fit_lock_wanted and self.store is not None

    @property
    def fingerprint(self) -> str:
        if self._fingerprint is None:
            self._fingerprint = self.dataset.fingerprint()
        return self._fingerprint

    def key(self, kind: str, params: dict) -> SubstrateKey:
        if kind not in SUBSTRATE_KINDS:
            raise SubstrateError(
                f"unknown substrate kind {kind!r}; available: {list(SUBSTRATE_KINDS)}"
            )
        return SubstrateKey(kind, self.fingerprint, hash_params(params))

    def attach_store(self, store: "ArtifactStore") -> None:
        """Back this provider with an artifact store (no-op when it has one).

        Called by the serving registry so the substrates behind its methods
        share the registry's store without re-plumbing every constructor.
        """
        if self.store is None:
            self.store = store

    # -- cache -------------------------------------------------------------------
    def peek(self, kind: str, params: dict) -> object | None:
        """The resident substrate if already built, without fitting."""
        with self._lock:
            return self._cache.get(self.key(kind, params))

    def adopt(self, kind: str, params: dict, instance: object) -> None:
        """Seed the cache with an already-built substrate.

        A provider that already holds an instance keeps it — adopting must
        never replace state other consumers hold.
        """
        key = self.key(kind, params)
        with self._lock:
            self._cache.setdefault(key, instance)

    def resident_count(self) -> int:
        """How many distinct substrate instances this provider holds."""
        with self._lock:
            return len(self._cache)

    # -- the one entry point -----------------------------------------------------
    def get(self, kind: str, params: dict, resolver=None, progress=None) -> object:
        """The fitted substrate for ``(kind, params)``, built at most once.

        Resolution order: in-memory cache, then ``resolver`` (the
        content-addressed state dirs of a method artifact currently being
        restored), then this provider's own store, then a fresh fit (under
        cross-process leader election when a store is attached).  Every path
        ends with the instance cached so all resident expanders share it.

        ``progress`` (a :class:`repro.obs.progress.ProgressReporter`,
        optional) receives fractional training progress when a cold fit is
        paid; cache hits and restores complete it immediately.
        """
        key = self.key(kind, params)
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None:
                self._hits.inc()
                if progress is not None:
                    progress.step(1.0)
                return cached
            key_lock = self._key_locks.setdefault(key, threading.Lock())
        with key_lock:
            with self._lock:
                cached = self._cache.get(key)
                if cached is not None:
                    self._hits.inc()
                    if progress is not None:
                        progress.step(1.0)
                    return cached
            instance = self._materialize(key, kind, params, resolver, progress)
            with self._lock:
                self._cache[key] = instance
                self._resident.set(len(self._cache))
            if progress is not None:
                progress.step(1.0)
            return instance

    # -- materialisation ---------------------------------------------------------
    def _materialize(
        self, key: SubstrateKey, kind: str, params: dict, resolver, progress=None
    ) -> object:
        if resolver is not None and resolver.has(kind, key.content_hash):
            # The substrate referenced by the artifact being restored; a
            # failure here is the artifact's corruption and must propagate
            # so the caller falls back to a refit of the whole method.
            started = time.perf_counter()
            with span("substrate_restore", kind=kind, source="resolver"):
                instance = resolver.load(
                    kind, key.content_hash, lambda d: self._load_substrate(kind, d)
                )
            self._restores.inc()
            with self._lock:
                self._restore_seconds[kind] = time.perf_counter() - started
            return instance
        instance = self._try_restore_from_store(key, kind)
        if instance is not None:
            return instance
        self._misses.inc()
        if not self.fit_lock_enabled:
            return self._fit_and_publish(key, kind, params, progress)
        return self._fit_single_payer(key, kind, params, progress)

    def _try_restore_from_store(self, key: SubstrateKey, kind: str) -> object | None:
        if self.store is None:
            return None
        try:
            if not self.store.contains_substrate(kind, key.content_hash):
                return None
            started = time.perf_counter()
            with span("substrate_restore", kind=kind, source="store"):
                instance = self.store.restore_substrate(
                    kind, key.content_hash, lambda d: self._load_substrate(kind, d)
                )
        except (StoreError, OSError):
            # Corrupt substrate artifact: evict it (even though method
            # manifests may reference it — it is unusable either way) so the
            # write-through after the fallback fit publishes a good copy.
            try:
                self.store.evict_substrate(kind, key.content_hash, force=True)
            except (StoreError, OSError):
                pass
            self._store_errors.inc()
            return None
        self._restores.inc()
        with self._lock:
            self._restore_seconds[kind] = time.perf_counter() - started
        return instance

    def _fit_and_publish(
        self, key: SubstrateKey, kind: str, params: dict, progress=None
    ) -> object:
        started = time.perf_counter()
        with span("substrate_fit", kind=kind):
            instance = self._fit_substrate(kind, params, progress)
        self._fits.inc()
        with self._lock:
            self._fit_seconds[kind] = time.perf_counter() - started
        if self.store is not None:
            self._publish_instance(key, kind, instance, self.store)
        return instance

    def _fit_single_payer(
        self, key: SubstrateKey, kind: str, params: dict, progress=None
    ) -> object:
        """Cold-fit under cross-process leader election (same contract as the
        method registry: the lock can delay a fit, never block progress)."""
        lock = FitLock(
            self.store.root,
            f"substrate-{kind}",
            key.content_hash,
            stale_after=self.fit_lock_stale_seconds,
        )
        deadline = time.monotonic() + self.fit_lock_wait_seconds
        contended = False
        while True:
            if lock.try_acquire():
                try:
                    self._fit_lock_acquires.inc()
                    if contended:
                        # A leader may have published while we stood in line.
                        instance = self._try_restore_from_store(key, kind)
                        if instance is not None:
                            self._fit_lock_restores.inc()
                            return instance
                    return self._fit_and_publish(key, kind, params, progress)
                finally:
                    lock.release()
            contended = True
            self._fit_lock_waits.inc()
            freed = lock.wait(timeout=max(0.0, deadline - time.monotonic()))
            instance = self._try_restore_from_store(key, kind)
            if instance is not None:
                self._fit_lock_restores.inc()
                return instance
            if not freed or time.monotonic() >= deadline:
                self._fit_lock_timeouts.inc()
                return self._fit_and_publish(key, kind, params, progress)
            # Lock freed but nothing published (the leader crashed): run again.

    # -- publication -------------------------------------------------------------
    def publish(self, store: "ArtifactStore", kind: str, params: dict) -> dict:
        """Ensure the substrate's artifact exists in ``store``; return its ref.

        Called by :meth:`ArtifactStore.save` while persisting a method
        artifact, so every manifest reference resolves even when the
        provider itself was built without a store.  Idempotent: an existing
        artifact is referenced, never rewritten.  Raises
        :class:`~repro.exceptions.StoreError` when the substrate could not
        be made durable — a manifest must never be written with a dangling
        reference, and the caller's write-through already treats a failed
        save as "skip persistence", never as a serving failure.
        """
        key = self.key(kind, params)
        if not store.contains_substrate(kind, key.content_hash):
            self._publish_instance(key, kind, self.get(kind, params), store)
            if not store.contains_substrate(kind, key.content_hash):
                raise StoreError(
                    f"substrate {kind}/{key.content_hash} could not be "
                    "published; refusing to write a dangling manifest reference"
                )
        return key.to_ref()

    def _publish_instance(
        self, key: SubstrateKey, kind: str, instance: object, store: "ArtifactStore"
    ) -> None:
        try:
            store.save_substrate(
                kind,
                key.content_hash,
                key.fingerprint,
                key.params_hash,
                lambda d: self._save_substrate(kind, instance, d),
            )
        except (StoreError, OSError):
            # Persistence is an optimisation; a failed write must never take
            # down the fit that just produced a good substrate.
            self._store_errors.inc()
            return
        self._publishes.inc()

    # -- per-kind adapters -------------------------------------------------------
    def _fit_substrate(self, kind: str, params: dict, progress=None) -> object:
        corpus = self.dataset.corpus
        entities = self.dataset.entities()
        if kind == COOCCURRENCE_EMBEDDINGS:
            return CooccurrenceEmbeddings(
                dim=int(params["dim"]),
                window=int(params["window"]),
                seed=int(params["seed"]),
                entity_dim=int(params["entity_dim"]),
            ).fit(corpus, entities, progress=progress)
        if kind == ENTITY_REPRESENTATIONS:
            # The encoder (training loop included) dominates this fit; the
            # final representation pass is the small remainder.
            encoder = self.context_encoder(
                EncoderConfig(**params["encoder"]),
                trained=bool(params["trained"]),
                progress=progress.subrange(0.0, 0.9) if progress is not None else None,
            )
            if params["trained"]:
                return encoder.entity_representations(corpus, entities)
            return encoder.entity_representations(
                corpus, entities, with_distributions=False
            )
        if kind == CAUSAL_LM:
            return CausalEntityLM(CausalLMConfig(**params)).fit(
                corpus, entities, progress=progress
            )
        if kind == ANN_INDEX:
            return self._fit_ann_index(params, progress)
        raise SubstrateError(f"unknown substrate kind {kind!r}")

    def _fit_ann_index(self, params: dict, progress=None):
        """Partition the referenced substrate's vector map (resolving the
        source through :meth:`get`, so it is fitted/restored at most once)."""
        from repro.retrieval import CandidateMatrix, PartitionedIndex

        source = params["source"]
        instance = self.get(
            source["kind"],
            source["params"],
            progress=progress.subrange(0.0, 0.8) if progress is not None else None,
        )
        vectors = self._ann_source_vectors(instance, params["field"])
        dim = params.get("dim")
        matrix = CandidateMatrix.from_vectors(
            vectors,
            dim=int(dim) if dim is not None else None,
            normalize=bool(params.get("normalize", False)),
        )
        return PartitionedIndex.build(
            matrix.matrix,
            matrix.ids,
            n_lists=params.get("n_lists"),
            seed=int(params.get("seed", 0)),
        )

    @staticmethod
    def _ann_source_vectors(instance: object, field: str) -> dict:
        if field == "entity":
            return instance.entity_vectors()
        if field == "hidden":
            return dict(instance.hidden)
        if field == "distribution":
            return dict(instance.distribution)
        raise SubstrateError(f"unknown ann index field {field!r}")

    @staticmethod
    def _save_substrate(kind: str, instance: object, directory: "Path") -> None:
        if kind == CAUSAL_LM:
            instance.save_state(directory)
        else:
            instance.save(directory)

    def _load_substrate(self, kind: str, directory: "Path") -> object:
        if kind == COOCCURRENCE_EMBEDDINGS:
            return CooccurrenceEmbeddings.load(directory)
        if kind == ENTITY_REPRESENTATIONS:
            return EntityRepresentations.load(directory)
        if kind == CAUSAL_LM:
            return CausalEntityLM.load_state(directory, self.dataset.entities())
        if kind == ANN_INDEX:
            from repro.retrieval import PartitionedIndex

            return PartitionedIndex.load(directory)
        raise SubstrateError(f"unknown substrate kind {kind!r}")

    def context_encoder(
        self, config: EncoderConfig, trained: bool = True, progress=None
    ) -> ContextEncoder:
        """The (memory-only) masked-entity encoder for ``config``.

        Built at most once per ``(config, trained)`` and never persisted: it
        exists to *produce* an entity-representations substrate, which is
        what serving actually consumes.
        """
        cache_key = (hash_params(_encoder_dict(config)), bool(trained))
        with self._lock:
            encoder = self._encoders.get(cache_key)
            if encoder is not None:
                if progress is not None:
                    progress.step(1.0)
                return encoder
        pretrained = self.get(
            COOCCURRENCE_EMBEDDINGS,
            cooccurrence_params_from_encoder(config),
            progress=progress.subrange(0.0, 0.3) if progress is not None else None,
        )
        encoder = ContextEncoder(config).fit(
            self.dataset.corpus,
            self.dataset.entities(),
            pretrained=pretrained,
            train=trained,
            progress=progress.subrange(0.3, 1.0) if progress is not None else None,
        )
        with self._lock:
            return self._encoders.setdefault(cache_key, encoder)

    # -- telemetry ---------------------------------------------------------------
    def record_ann_query(self, probes: int, shortlist_size: int, fallback: bool) -> None:
        """Count one probed retrieval (called from the expand hot path)."""
        self._ann_queries.inc()
        self._ann_probes.inc(probes)
        self._ann_shortlist.inc(shortlist_size)
        if fallback:
            self._ann_fallbacks.inc()

    # -- introspection -----------------------------------------------------------
    def stats(self) -> dict:
        """The legacy stats dict (wire shape pinned), as a registry view."""
        with self._lock:
            resident = len(self._cache)
            resident_kinds = sorted({key.kind for key in self._cache})
            fit_seconds = dict(self._fit_seconds)
            restore_seconds = dict(self._restore_seconds)
        return {
            "resident": resident,
            "resident_kinds": resident_kinds,
            "hits": int(self._hits.total()),
            "misses": int(self._misses.total()),
            "fits": int(self._fits.total()),
            "restores": int(self._restores.total()),
            "publishes": int(self._publishes.total()),
            "store_errors": int(self._store_errors.total()),
            "fit_seconds": fit_seconds,
            "restore_seconds": restore_seconds,
            "fit_lock": {
                "enabled": self.fit_lock_enabled,
                "acquires": int(self._fit_lock_acquires.total()),
                "waits": int(self._fit_lock_waits.total()),
                "restores_after_wait": int(self._fit_lock_restores.total()),
                "timeouts": int(self._fit_lock_timeouts.total()),
            },
            "ann": {
                "queries": int(self._ann_queries.total()),
                "probes": int(self._ann_probes.total()),
                "shortlisted": int(self._ann_shortlist.total()),
                "exact_fallbacks": int(self._ann_fallbacks.total()),
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"SubstrateProvider(resident={self.resident_count()}, "
            f"store={'attached' if self.store is not None else 'none'})"
        )
