"""Shared substrate layer: fit-once model substrates across all methods.

See :mod:`repro.substrate.provider` for the full story.  The short version:
every expansion method's expensive shared models (co-occurrence embeddings,
context-encoder entity representations, the causal entity LM) are fitted at
most once per dataset by a :class:`SubstrateProvider`, cached in memory for
every resident expander, persisted once as content-addressed artifacts that
method manifests *reference* instead of embed, and trained exactly once per
cluster via :class:`~repro.store.FitLock` leader election.
"""

from repro.substrate.provider import (
    ANN_INDEX,
    CAUSAL_LM,
    COOCCURRENCE_EMBEDDINGS,
    ENTITY_REPRESENTATIONS,
    SUBSTRATE_KINDS,
    Substrate,
    SubstrateKey,
    SubstrateProvider,
    ann_index_params,
    causal_lm_params,
    cooccurrence_params_from_encoder,
    entity_representation_params,
    hash_params,
)

__all__ = [
    "ANN_INDEX",
    "CAUSAL_LM",
    "COOCCURRENCE_EMBEDDINGS",
    "ENTITY_REPRESENTATIONS",
    "SUBSTRATE_KINDS",
    "Substrate",
    "SubstrateKey",
    "SubstrateProvider",
    "ann_index_params",
    "causal_lm_params",
    "cooccurrence_params_from_encoder",
    "entity_representation_params",
    "hash_params",
]
