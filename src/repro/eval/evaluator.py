"""Runs expanders over queries and aggregates metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.config import EvaluationConfig
from repro.core.base import Expander
from repro.dataset.ultrawiki import UltraWikiDataset
from repro.eval.metrics import MetricSet, query_metrics
from repro.exceptions import EvaluationError
from repro.types import ExpansionResult, Query
from repro.utils.rng import RandomState


@dataclass
class EvaluationReport:
    """Aggregated evaluation of one method over a set of queries."""

    method: str
    num_queries: int
    metrics: MetricSet
    per_query: dict[str, MetricSet] = field(default_factory=dict)

    def value(self, metric_type: str, metric: str, k: int) -> float:
        return self.metrics.value(metric_type, metric, k)

    def average(self, metric_type: str) -> float:
        return self.metrics.average(metric_type)

    def average_map(self, metric_type: str) -> float:
        return self.metrics.average_map(metric_type)

    def to_dict(self) -> dict:
        return {
            "method": self.method,
            "num_queries": self.num_queries,
            "metrics": self.metrics.to_dict(),
        }


class Evaluator:
    """Evaluates expanders on an UltraWiki-style dataset."""

    def __init__(
        self,
        dataset: UltraWikiDataset,
        config: EvaluationConfig | None = None,
        max_queries: int | None = None,
        query_filter: Callable[[Query], bool] | None = None,
        seed: int = 7,
    ):
        """``max_queries`` subsamples queries deterministically (stratified by
        fine-grained class) so expensive methods can be compared on a budget;
        ``query_filter`` restricts evaluation to a subset (e.g. only classes
        where the positive and negative attributes coincide)."""
        self.dataset = dataset
        self.config = config or EvaluationConfig()
        self.config.validate()
        self._queries = self._select_queries(max_queries, query_filter, seed)
        if not self._queries:
            raise EvaluationError("no queries selected for evaluation")

    # -- query selection -------------------------------------------------------
    def _select_queries(
        self,
        max_queries: int | None,
        query_filter: Callable[[Query], bool] | None,
        seed: int,
    ) -> list[Query]:
        queries = list(self.dataset.queries)
        if query_filter is not None:
            queries = [q for q in queries if query_filter(q)]
        if max_queries is None or len(queries) <= max_queries:
            return queries
        # Stratified subsample: round-robin over fine-grained classes keeps
        # every class represented.
        rng = RandomState(seed)
        by_class: dict[str, list[Query]] = {}
        for query in queries:
            fine = self.dataset.ultra_class(query.class_id).fine_class
            by_class.setdefault(fine, []).append(query)
        for fine in by_class:
            by_class[fine] = rng.child(fine).shuffle(by_class[fine])
        selected: list[Query] = []
        while len(selected) < max_queries:
            progressed = False
            for fine in sorted(by_class):
                if by_class[fine] and len(selected) < max_queries:
                    selected.append(by_class[fine].pop())
                    progressed = True
            if not progressed:
                break
        return selected

    @property
    def queries(self) -> list[Query]:
        return list(self._queries)

    # -- evaluation ---------------------------------------------------------------
    def evaluate_result(self, query: Query, result: ExpansionResult) -> MetricSet:
        """Metrics of one pre-computed expansion result."""
        return query_metrics(
            result.entity_ids(),
            self.dataset.positive_targets(query),
            self.dataset.negative_targets(query),
            cutoffs=self.config.cutoffs,
        )

    def evaluate(self, expander: Expander, top_k: int | None = None) -> EvaluationReport:
        """Run ``expander`` over the selected queries and aggregate metrics."""
        if not expander.is_fitted:
            expander.fit(self.dataset)
        top_k = top_k or max(self.config.cutoffs)
        per_query: dict[str, MetricSet] = {}
        for query in self._queries:
            result = expander.expand(query, top_k=top_k)
            per_query[query.query_id] = self.evaluate_result(query, result)
        return EvaluationReport(
            method=expander.name,
            num_queries=len(per_query),
            metrics=MetricSet.mean(per_query.values()),
            per_query=per_query,
        )

    def evaluate_many(
        self, expanders: Sequence[Expander], top_k: int | None = None
    ) -> dict[str, EvaluationReport]:
        """Evaluate several expanders on the same query subset."""
        return {expander.name: self.evaluate(expander, top_k) for expander in expanders}

    # -- grouping helpers ------------------------------------------------------------
    def split_reports(
        self,
        expander: Expander,
        group_of: Callable[[Query], str],
        top_k: int | None = None,
    ) -> dict[str, EvaluationReport]:
        """Evaluate ``expander`` and aggregate per query group.

        ``group_of`` maps a query to a group label (e.g. ``"same_attrs"`` vs
        ``"diff_attrs"``); one report per group is returned.
        """
        full = self.evaluate(expander, top_k)
        grouped: dict[str, list[MetricSet]] = {}
        for query in self._queries:
            label = group_of(query)
            grouped.setdefault(label, []).append(full.per_query[query.query_id])
        return {
            label: EvaluationReport(
                method=f"{expander.name}[{label}]",
                num_queries=len(metric_sets),
                metrics=MetricSet.mean(metric_sets),
            )
            for label, metric_sets in grouped.items()
        }
