"""Fine-grained-class-level evaluation.

Section VI-B(4) of the paper diagnoses the statistical baselines by measuring
MAP at the *fine-grained* class level (is the expanded entity at least a
member of the seed entities' fine-grained class?), reporting e.g. 21.43 for
CaSE vs 82.08 for RetExpan at MAP@100.  This module provides that view: the
relevant set of a query is every candidate entity belonging to the query's
fine-grained class, regardless of ultra-fine-grained attributes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.base import Expander
from repro.dataset.ultrawiki import UltraWikiDataset
from repro.eval.metrics import average_precision_at_k, precision_at_k
from repro.exceptions import EvaluationError
from repro.types import Query


@dataclass
class FineGrainedReport:
    """Fine-grained-level MAP/P for one method."""

    method: str
    num_queries: int
    map_at: dict[int, float]
    p_at: dict[int, float]

    def value(self, metric: str, k: int) -> float:
        store = self.map_at if metric.lower() == "map" else self.p_at
        if k not in store:
            raise EvaluationError(f"cutoff {k} was not evaluated")
        return store[k]

    def to_dict(self) -> dict:
        return {
            "method": self.method,
            "num_queries": self.num_queries,
            "map_at": dict(self.map_at),
            "p_at": dict(self.p_at),
        }


def fine_grained_targets(dataset: UltraWikiDataset, query: Query) -> set[int]:
    """All candidate entities of the query's fine-grained class, minus its seeds."""
    fine_class = dataset.ultra_class(query.class_id).fine_class
    seeds = set(query.positive_seed_ids) | set(query.negative_seed_ids)
    return {
        entity.entity_id
        for entity in dataset.entities_of_fine_class(fine_class)
        if entity.entity_id not in seeds
    }


def evaluate_fine_grained(
    expander: Expander,
    dataset: UltraWikiDataset,
    queries: list[Query] | None = None,
    cutoffs: tuple[int, ...] = (10, 20, 50, 100),
    top_k: int | None = None,
) -> FineGrainedReport:
    """Evaluate ``expander`` against fine-grained class membership.

    A method can only score well here by recalling members of the seed
    entities' fine-grained class at all — the capability the paper finds
    missing in the purely statistical baselines.
    """
    if not cutoffs or any(k <= 0 for k in cutoffs):
        raise EvaluationError("cutoffs must be positive integers")
    if not expander.is_fitted:
        expander.fit(dataset)
    queries = list(queries) if queries is not None else list(dataset.queries)
    if not queries:
        raise EvaluationError("no queries to evaluate")
    top_k = top_k or max(cutoffs)

    map_totals = {k: 0.0 for k in cutoffs}
    p_totals = {k: 0.0 for k in cutoffs}
    for query in queries:
        relevant = fine_grained_targets(dataset, query)
        ranking = expander.expand(query, top_k=top_k).entity_ids()
        for k in cutoffs:
            map_totals[k] += average_precision_at_k(ranking, relevant, k)
            p_totals[k] += precision_at_k(ranking, relevant, k)

    count = len(queries)
    return FineGrainedReport(
        method=expander.name,
        num_queries=count,
        map_at={k: total / count for k, total in map_totals.items()},
        p_at={k: total / count for k, total in p_totals.items()},
    )
