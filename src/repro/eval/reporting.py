"""Plain-text table formatting for experiment output.

The benchmark harness prints the same rows the paper's tables report; these
helpers render them as aligned monospace tables.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.eval.evaluator import EvaluationReport


def format_table(rows: Sequence[Mapping], columns: Sequence[str] | None = None) -> str:
    """Render a list of dict rows as an aligned text table."""
    if not rows:
        return "(empty table)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered_rows = [
        [_format_cell(row.get(column, "")) for column in columns] for row in rows
    ]
    widths = [
        max(len(str(column)), *(len(cells[i]) for cells in rendered_rows))
        for i, column in enumerate(columns)
    ]
    header = " | ".join(str(column).ljust(widths[i]) for i, column in enumerate(columns))
    separator = "-+-".join("-" * width for width in widths)
    body = "\n".join(
        " | ".join(cells[i].ljust(widths[i]) for i in range(len(columns)))
        for cells in rendered_rows
    )
    return f"{header}\n{separator}\n{body}"


def _format_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    if isinstance(value, bool):
        return "yes" if value else "no"
    return str(value)


def metric_row(
    report: EvaluationReport, metric_type: str, cutoffs: Sequence[int] = (10, 20, 50, 100)
) -> dict:
    """One paper-style row: method, MAP@K and P@K columns, and the Avg column."""
    row: dict = {"method": report.method, "type": metric_type.capitalize()}
    for k in cutoffs:
        row[f"MAP@{k}"] = report.value(metric_type, "map", k)
    for k in cutoffs:
        row[f"P@{k}"] = report.value(metric_type, "p", k)
    row["Avg"] = report.average(metric_type)
    return row


def format_metric_report(
    reports: Mapping[str, EvaluationReport],
    metric_types: Sequence[str] = ("pos", "neg", "comb"),
    cutoffs: Sequence[int] = (10, 20, 50, 100),
) -> str:
    """Render a Table-II-style block: one row per (metric type, method)."""
    rows = []
    for metric_type in metric_types:
        for report in reports.values():
            rows.append(metric_row(report, metric_type, cutoffs))
    return format_table(rows)
