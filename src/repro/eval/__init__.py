"""Evaluation protocol: Pos/Neg/Comb MAP and precision at K."""

from repro.eval.metrics import (
    average_precision_at_k,
    precision_at_k,
    query_metrics,
    MetricSet,
)
from repro.eval.evaluator import Evaluator, EvaluationReport
from repro.eval.fine_grained import (
    FineGrainedReport,
    evaluate_fine_grained,
    fine_grained_targets,
)
from repro.eval.reporting import format_table, format_metric_report

__all__ = [
    "average_precision_at_k",
    "precision_at_k",
    "query_metrics",
    "MetricSet",
    "Evaluator",
    "EvaluationReport",
    "FineGrainedReport",
    "evaluate_fine_grained",
    "fine_grained_targets",
    "format_table",
    "format_metric_report",
]
