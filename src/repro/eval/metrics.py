"""Ranking metrics (Section VI-A).

The paper evaluates with ``xy@K`` where ``x ∈ {Pos, Neg, Comb}``,
``y ∈ {MAP, P}`` and ``K ∈ {10, 20, 50, 100}``:

* ``PosMAP@K`` / ``PosP@K`` — rank-aware / rank-agnostic precision against
  the positive target set ``P`` (higher is better);
* ``NegMAP@K`` / ``NegP@K`` — the same against the negative target set ``N``
  (lower is better: negatives should not intrude);
* ``CombMAP@K = (PosMAP@K + 100 − NegMAP@K) / 2`` and the analogous
  ``CombP@K`` summarise both objectives on a 0–100 scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.exceptions import EvaluationError


def precision_at_k(ranking: Sequence[int], relevant: set[int], k: int) -> float:
    """Precision@K in percent."""
    if k <= 0:
        raise EvaluationError("k must be positive")
    top = list(ranking[:k])
    if not top:
        return 0.0
    hits = sum(1 for entity_id in top if entity_id in relevant)
    return 100.0 * hits / k


def average_precision_at_k(ranking: Sequence[int], relevant: set[int], k: int) -> float:
    """Average precision at K in percent.

    The normaliser is ``min(|relevant|, K)`` so a perfect ranking scores 100
    even when the relevant set is larger than ``K``.
    """
    if k <= 0:
        raise EvaluationError("k must be positive")
    if not relevant:
        return 0.0
    hits = 0
    precision_sum = 0.0
    for index, entity_id in enumerate(ranking[:k], start=1):
        if entity_id in relevant:
            hits += 1
            precision_sum += hits / index
    denominator = min(len(relevant), k)
    return 100.0 * precision_sum / denominator


@dataclass
class MetricSet:
    """All metric values for one query (or one aggregate)."""

    cutoffs: tuple[int, ...]
    pos_map: dict[int, float] = field(default_factory=dict)
    pos_p: dict[int, float] = field(default_factory=dict)
    neg_map: dict[int, float] = field(default_factory=dict)
    neg_p: dict[int, float] = field(default_factory=dict)

    def comb_map(self, k: int) -> float:
        return (self.pos_map[k] + 100.0 - self.neg_map[k]) / 2.0

    def comb_p(self, k: int) -> float:
        return (self.pos_p[k] + 100.0 - self.neg_p[k]) / 2.0

    def value(self, metric_type: str, metric: str, k: int) -> float:
        """Look up a value by (``Pos``/``Neg``/``Comb``, ``MAP``/``P``, K)."""
        metric_type = metric_type.lower()
        metric = metric.lower()
        if metric_type == "pos":
            return self.pos_map[k] if metric == "map" else self.pos_p[k]
        if metric_type == "neg":
            return self.neg_map[k] if metric == "map" else self.neg_p[k]
        if metric_type == "comb":
            return self.comb_map(k) if metric == "map" else self.comb_p(k)
        raise EvaluationError(f"unknown metric type {metric_type!r}")

    def average(self, metric_type: str) -> float:
        """Row average over MAP@K and P@K for all cutoffs (the paper's "Avg" column)."""
        values = [self.value(metric_type, "map", k) for k in self.cutoffs]
        values += [self.value(metric_type, "p", k) for k in self.cutoffs]
        return sum(values) / len(values)

    def average_map(self, metric_type: str) -> float:
        """Average over MAP@K only (used by Tables III, V–VIII)."""
        values = [self.value(metric_type, "map", k) for k in self.cutoffs]
        return sum(values) / len(values)

    def to_dict(self) -> dict:
        return {
            "cutoffs": list(self.cutoffs),
            "pos_map": dict(self.pos_map),
            "pos_p": dict(self.pos_p),
            "neg_map": dict(self.neg_map),
            "neg_p": dict(self.neg_p),
        }

    @classmethod
    def mean(cls, metric_sets: Iterable["MetricSet"]) -> "MetricSet":
        """Average a collection of per-query metric sets."""
        metric_sets = list(metric_sets)
        if not metric_sets:
            raise EvaluationError("cannot average an empty collection of metrics")
        cutoffs = metric_sets[0].cutoffs
        for ms in metric_sets:
            if ms.cutoffs != cutoffs:
                raise EvaluationError("metric sets have inconsistent cutoffs")
        result = cls(cutoffs=cutoffs)
        count = len(metric_sets)
        for k in cutoffs:
            result.pos_map[k] = sum(ms.pos_map[k] for ms in metric_sets) / count
            result.pos_p[k] = sum(ms.pos_p[k] for ms in metric_sets) / count
            result.neg_map[k] = sum(ms.neg_map[k] for ms in metric_sets) / count
            result.neg_p[k] = sum(ms.neg_p[k] for ms in metric_sets) / count
        return result


def query_metrics(
    ranking: Sequence[int],
    positive_targets: set[int],
    negative_targets: set[int],
    cutoffs: Sequence[int] = (10, 20, 50, 100),
) -> MetricSet:
    """Compute all metrics for one ranked list."""
    metric_set = MetricSet(cutoffs=tuple(cutoffs))
    for k in cutoffs:
        metric_set.pos_map[k] = average_precision_at_k(ranking, positive_targets, k)
        metric_set.pos_p[k] = precision_at_k(ranking, positive_targets, k)
        metric_set.neg_map[k] = average_precision_at_k(ranking, negative_targets, k)
        metric_set.neg_p[k] = precision_at_k(ranking, negative_targets, k)
    return metric_set
