"""Synthetic corpus sentence generation.

Replaces Step 2 of the UltraWiki pipeline (crawling Wikipedia text and
aligning entities by hyperlink).  Every entity receives a number of context
sentences proportional to its popularity; a share of those sentences is
*attribute-bearing* (the template wording expresses one attribute value), the
rest are generic background sentences.  Attribute-bearing sentences are what
lets the context encoder learn ultra-fine-grained distinctions, mirroring how
real Wikipedia text mentions operating systems, continents, and so on.
"""

from __future__ import annotations

import math

from repro.kb.schema import ClassSchema
from repro.types import Entity, Sentence
from repro.utils.rng import RandomState

#: generic sentence templates used for distractor entities.
_DISTRACTOR_TEMPLATES = (
    "{name} was mentioned in several regional newspapers.",
    "A committee reviewed the history of {name} last year.",
    "{name} attracts occasional academic interest.",
    "Local residents are familiar with {name}.",
    "The records concerning {name} are kept in a public archive.",
)


class SentenceGenerator:
    """Generates entity-labelled context sentences."""

    def __init__(self, rng: RandomState, attribute_sentence_ratio: float = 0.7):
        """``attribute_sentence_ratio`` is the share of attribute-bearing sentences."""
        if not 0.0 <= attribute_sentence_ratio <= 1.0:
            raise ValueError("attribute_sentence_ratio must be in [0, 1]")
        self._rng = rng
        self._attribute_ratio = attribute_sentence_ratio
        self._next_sentence_id = 0

    def _allocate_id(self) -> int:
        sentence_id = self._next_sentence_id
        self._next_sentence_id += 1
        return sentence_id

    def _sentence_count(self, entity: Entity, mean_sentences: float, rng: RandomState) -> int:
        """Sentences per entity scale with popularity; every entity gets >= 2."""
        lam = max(mean_sentences * (0.4 + 0.6 * entity.popularity), 1.0)
        count = int(rng.generator.poisson(lam))
        return max(count, 2)

    def _attribute_sentence(self, entity: Entity, schema: ClassSchema, rng: RandomState) -> str:
        attributes = list(entity.attributes.items())
        attribute, value = attributes[rng.integers(0, len(attributes))]
        templates = schema.attribute_templates[attribute]
        template = templates[rng.integers(0, len(templates))]
        return template.format(name=entity.name, phrase=schema.phrase(attribute, value))

    def _generic_sentence(self, entity: Entity, schema: ClassSchema | None, rng: RandomState) -> str:
        templates = schema.generic_templates if schema is not None else _DISTRACTOR_TEMPLATES
        template = templates[rng.integers(0, len(templates))]
        return template.format(name=entity.name)

    def generate_for_entity(
        self,
        entity: Entity,
        schema: ClassSchema | None,
        mean_sentences: float,
    ) -> list[Sentence]:
        """Generate the context sentences for a single entity."""
        rng = self._rng.child("sentences", entity.entity_id)
        count = self._sentence_count(entity, mean_sentences, rng)
        sentences: list[Sentence] = []
        for _ in range(count):
            use_attribute = (
                schema is not None
                and entity.attributes
                and rng.random() < self._attribute_ratio
            )
            if use_attribute:
                text = self._attribute_sentence(entity, schema, rng)
            else:
                text = self._generic_sentence(entity, schema, rng)
            sentences.append(
                Sentence(
                    sentence_id=self._allocate_id(),
                    text=text,
                    entity_ids=(entity.entity_id,),
                )
            )
        return sentences

    def generate_corpus(
        self,
        entities: list[Entity],
        schemas: dict[str, ClassSchema],
        mean_sentences: float,
    ) -> list[Sentence]:
        """Generate sentences for every entity in ``entities``."""
        all_sentences: list[Sentence] = []
        for entity in entities:
            schema = schemas.get(entity.fine_class) if entity.fine_class else None
            all_sentences.extend(
                self.generate_for_entity(entity, schema, mean_sentences)
            )
        return all_sentences

    @staticmethod
    def expected_sentences(num_entities: int, mean_sentences: float) -> int:
        """Rough expected corpus size, used for sanity checks and reports."""
        return int(math.ceil(num_entities * max(mean_sentences, 2.0)))
