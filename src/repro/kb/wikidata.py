"""Simulated Wikidata attribute store and human-annotation simulator.

Step 3 of the UltraWiki pipeline first queries the Wikidata API for attribute
values and falls back to human annotation (three annotators, Fleiss' kappa
0.90) for the remainder.  This module reproduces both behaviours:

* :class:`WikidataClient` answers attribute queries for a configurable
  fraction of (entity, attribute) pairs ("coverage"); the rest return None,
  the same way a missing Wikidata statement would.
* :class:`AnnotationSimulator` simulates three independent annotators with a
  small per-annotator error rate and resolves their labels by majority vote,
  reporting a Fleiss-kappa-style agreement statistic.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.types import Entity
from repro.utils.rng import RandomState


class WikidataClient:
    """An in-memory attribute store with partial coverage.

    The ground-truth values come from the entity objects themselves (the
    synthetic generator plays the role of reality); coverage controls which
    statements the "API" actually has.
    """

    def __init__(self, entities: list[Entity], coverage: float, rng: RandomState):
        if not 0.0 <= coverage <= 1.0:
            raise ValueError("coverage must be in [0, 1]")
        self.coverage = coverage
        self._known: dict[tuple[int, str], str] = {}
        local_rng = rng.child("wikidata")
        for entity in entities:
            for attribute, value in entity.attributes.items():
                if local_rng.random() < coverage:
                    self._known[(entity.entity_id, attribute)] = value
        self.query_count = 0

    def query(self, entity_id: int, attribute: str) -> str | None:
        """Return the stored value for (entity, attribute), or None if absent."""
        self.query_count += 1
        return self._known.get((entity_id, attribute))

    def num_statements(self) -> int:
        return len(self._known)


@dataclass
class AnnotationReport:
    """Summary of a simulated manual-annotation pass."""

    num_items: int
    num_annotators: int
    agreement: float
    labels: dict[tuple[int, str], str]


class AnnotationSimulator:
    """Simulates the three-annotator manual labelling pass.

    Each annotator reports the true value with probability ``1 - error_rate``
    and a uniformly random wrong value otherwise; the final label is the
    majority vote.  ``agreement`` is the fraction of items on which all three
    annotators agree — a simple stand-in for the paper's Fleiss kappa of 0.90.
    """

    def __init__(self, rng: RandomState, error_rate: float = 0.04, num_annotators: int = 3):
        if not 0.0 <= error_rate < 0.5:
            raise ValueError("error_rate must be in [0, 0.5)")
        if num_annotators < 1:
            raise ValueError("num_annotators must be >= 1")
        self._rng = rng.child("annotation")
        self.error_rate = error_rate
        self.num_annotators = num_annotators

    def _annotate_once(self, true_value: str, choices: tuple[str, ...], rng: RandomState) -> str:
        if rng.random() >= self.error_rate or len(choices) <= 1:
            return true_value
        wrong = [value for value in choices if value != true_value]
        return wrong[rng.integers(0, len(wrong))]

    def annotate(
        self,
        items: list[tuple[Entity, str, tuple[str, ...]]],
    ) -> AnnotationReport:
        """Annotate ``(entity, attribute, possible_values)`` items by majority vote."""
        labels: dict[tuple[int, str], str] = {}
        unanimous = 0
        for entity, attribute, choices in items:
            true_value = entity.attributes[attribute]
            rng = self._rng.child(entity.entity_id, attribute)
            votes = [
                self._annotate_once(true_value, choices, rng.child(annotator))
                for annotator in range(self.num_annotators)
            ]
            counts = Counter(votes)
            label, _ = counts.most_common(1)[0]
            labels[(entity.entity_id, attribute)] = label
            if len(counts) == 1:
                unanimous += 1
        agreement = unanimous / len(items) if items else 1.0
        return AnnotationReport(
            num_items=len(items),
            num_annotators=self.num_annotators,
            agreement=agreement,
            labels=labels,
        )
