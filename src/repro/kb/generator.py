"""Synthetic entity generation.

Replaces Step 1 of the UltraWiki construction pipeline (crawling entity lists
from Wikipedia).  For each fine-grained class schema, the generator mints a
configurable number of entities with unique surface forms, assigns attribute
values, and gives each entity a popularity weight with a long-tail skew so
that downstream components (sentence counts, the simulated GPT-4 oracle) can
reproduce the paper's long-tail observations.
"""

from __future__ import annotations

from repro.exceptions import DatasetError
from repro.kb.schema import ClassSchema
from repro.types import Entity
from repro.utils.rng import RandomState

#: word pool for distractor entity names ("other Wikipedia pages").
_DISTRACTOR_HEADS = (
    "Harbor", "Meadow", "Granite", "Willow", "Falcon", "Amber", "Cobalt",
    "Juniper", "Marble", "Crescent", "Drift", "Ember", "Fable", "Gossamer",
    "Hollow", "Ivory", "Jasper", "Krait", "Larkspur", "Mosaic",
)
_DISTRACTOR_TAILS = (
    "Bridge", "Festival", "Society", "Railway", "Observatory", "Orchestra",
    "Museum", "Canal", "Expedition", "Treaty", "Archive", "Cathedral",
    "Reservoir", "Theatre", "Foundry", "Lighthouse", "Garden", "Quarry",
)


class EntityGenerator:
    """Mints synthetic entities for class schemas and distractor pools."""

    def __init__(self, rng: RandomState):
        self._rng = rng
        self._used_names: set[str] = set()
        self._next_id = 0

    # -- helpers --------------------------------------------------------------
    def _allocate_id(self) -> int:
        entity_id = self._next_id
        self._next_id += 1
        return entity_id

    def _unique_name(self, base: str) -> str:
        """Return ``base`` or a numbered variant that has not been used yet."""
        if base not in self._used_names:
            self._used_names.add(base)
            return base
        suffix = 2
        while f"{base} {self._roman(suffix)}" in self._used_names:
            suffix += 1
        name = f"{base} {self._roman(suffix)}"
        self._used_names.add(name)
        return name

    @staticmethod
    def _roman(number: int) -> str:
        """Small roman numerals used to disambiguate repeated name bases."""
        numerals = (
            (10, "X"), (9, "IX"), (5, "V"), (4, "IV"), (1, "I"),
        )
        out = []
        remaining = number
        for value, symbol in numerals:
            while remaining >= value:
                out.append(symbol)
                remaining -= value
        return "".join(out)

    def _sample_popularity(self, rng: RandomState, long_tail_fraction: float) -> float:
        """Popularity in (0, 1]; a configurable fraction of entities is long-tail."""
        if rng.random() < long_tail_fraction:
            return rng.uniform(0.05, 0.3)
        return rng.uniform(0.5, 1.0)

    # -- public API -----------------------------------------------------------
    def generate_class_entities(
        self,
        schema: ClassSchema,
        count: int,
        long_tail_fraction: float = 0.3,
    ) -> list[Entity]:
        """Generate ``count`` entities for ``schema``.

        Attribute values are sampled uniformly and independently per
        attribute, which guarantees (for reasonable ``count``) that every
        attribute-value combination is populated — the property the paper's
        negative-aware class generation relies on.
        """
        if count <= 0:
            raise DatasetError("count must be positive")
        rng = self._rng.child("entities", schema.name)
        entities: list[Entity] = []
        for index in range(count):
            prefix = schema.name_prefixes[rng.integers(0, len(schema.name_prefixes))]
            suffix = schema.name_suffixes[rng.integers(0, len(schema.name_suffixes))]
            base = f"{prefix} {suffix}".strip() if suffix else prefix
            name = self._unique_name(base)
            attributes = {
                attribute: values[rng.integers(0, len(values))]
                for attribute, values in schema.attributes.items()
            }
            entities.append(
                Entity(
                    entity_id=self._allocate_id(),
                    name=name,
                    fine_class=schema.name,
                    attributes=attributes,
                    popularity=self._sample_popularity(rng, long_tail_fraction),
                )
            )
        return entities

    def generate_distractors(self, count: int) -> list[Entity]:
        """Generate distractor entities with no fine-grained class or attributes."""
        if count < 0:
            raise DatasetError("count must be non-negative")
        rng = self._rng.child("distractors")
        distractors: list[Entity] = []
        for index in range(count):
            head = _DISTRACTOR_HEADS[rng.integers(0, len(_DISTRACTOR_HEADS))]
            tail = _DISTRACTOR_TAILS[rng.integers(0, len(_DISTRACTOR_TAILS))]
            name = self._unique_name(f"{head} {tail}")
            distractors.append(
                Entity(
                    entity_id=self._allocate_id(),
                    name=name,
                    fine_class=None,
                    attributes={},
                    popularity=rng.uniform(0.1, 1.0),
                )
            )
        return distractors
