"""Synthetic knowledge-base substrate.

This subpackage replaces the paper's Wikipedia / Wikidata dependency with a
deterministic generator that produces the same *shape* of data: fine-grained
semantic classes, attributed entities, long-tail popularity skew, distractor
entities, and context sentences whose wording carries the attribute signal.
"""

from repro.kb.schema import ClassSchema, default_schemas, schema_by_name
from repro.kb.generator import EntityGenerator
from repro.kb.sentences import SentenceGenerator
from repro.kb.wikidata import WikidataClient, AnnotationSimulator
from repro.kb.corpus import Corpus

__all__ = [
    "ClassSchema",
    "default_schemas",
    "schema_by_name",
    "EntityGenerator",
    "SentenceGenerator",
    "WikidataClient",
    "AnnotationSimulator",
    "Corpus",
]
