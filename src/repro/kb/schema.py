"""Schemas of the ten fine-grained semantic classes.

The paper selects ten fine-grained classes from Wikipedia lists (Figure 4
names them: Canada universities, Chemical elements, China cities, Countries,
Mobile phone brands, Nobel laureates, Percussion instruments, US airports,
US national monuments, US presidents) and annotates 2–3 independent,
objective attributes per class.  The exact attribute inventory lives in the
paper's supplementary notes, so this module defines a faithful analogue:
each class declares 2–3 attributes with small categorical value sets, name
components for synthetic entity surface forms, and per-attribute sentence
templates whose wording expresses the attribute value lexically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.exceptions import DatasetError


@dataclass(frozen=True)
class ClassSchema:
    """Blueprint of one fine-grained semantic class.

    Attributes
    ----------
    name:
        Machine name of the class (e.g. ``"mobile_phone_brands"``).
    description:
        Human-readable description used in prompts and reports.
    attributes:
        Mapping from attribute name to the tuple of possible values.
    value_phrases:
        Mapping ``(attribute, value) -> phrase`` injected into sentence
        templates so the corpus text expresses the value.
    name_prefixes / name_suffixes:
        Components combined to mint synthetic entity surface forms.
    attribute_templates:
        Mapping from attribute name to sentence templates with ``{name}`` and
        ``{phrase}`` slots.
    generic_templates:
        Attribute-free templates providing background context.
    """

    name: str
    description: str
    attributes: Mapping[str, tuple[str, ...]]
    value_phrases: Mapping[tuple[str, str], str]
    name_prefixes: tuple[str, ...]
    name_suffixes: tuple[str, ...]
    attribute_templates: Mapping[str, tuple[str, ...]]
    generic_templates: tuple[str, ...]

    def phrase(self, attribute: str, value: str) -> str:
        """Textual phrase expressing ``attribute == value``."""
        key = (attribute, value)
        if key not in self.value_phrases:
            raise DatasetError(
                f"schema {self.name!r} has no phrase for {attribute}={value}"
            )
        return self.value_phrases[key]

    def attribute_names(self) -> tuple[str, ...]:
        return tuple(self.attributes.keys())


def _schema(
    name: str,
    description: str,
    attributes: dict[str, tuple[str, ...]],
    value_phrases: dict[tuple[str, str], str],
    name_prefixes: Sequence[str],
    name_suffixes: Sequence[str],
    attribute_templates: dict[str, tuple[str, ...]],
    generic_templates: Sequence[str],
) -> ClassSchema:
    return ClassSchema(
        name=name,
        description=description,
        attributes=attributes,
        value_phrases=value_phrases,
        name_prefixes=tuple(name_prefixes),
        name_suffixes=tuple(name_suffixes),
        attribute_templates=attribute_templates,
        generic_templates=tuple(generic_templates),
    )


def _mobile_phone_brands() -> ClassSchema:
    return _schema(
        name="mobile_phone_brands",
        description="Mobile phone brands",
        attributes={
            "os": ("android", "ios", "proprietary"),
            "manufacturer_region": ("asia", "america", "europe"),
            "listed": ("public", "private"),
        },
        value_phrases={
            ("os", "android"): "ships handsets running the Android operating system",
            ("os", "ios"): "ships handsets running its own iOS operating system",
            ("os", "proprietary"): "ships handsets running a proprietary feature-phone system",
            ("manufacturer_region", "asia"): "is manufactured by an Asian company",
            ("manufacturer_region", "america"): "is manufactured by an American company",
            ("manufacturer_region", "europe"): "is manufactured by a European company",
            ("listed", "public"): "is publicly listed on a stock exchange",
            ("listed", "private"): "remains a privately held company",
        },
        name_prefixes=(
            "Vexo", "Nuvia", "Teleca", "Orion", "Zenfo", "Quarz", "Lumo",
            "Pixa", "Haptix", "Celtro", "Axion", "Novex", "Britel", "Kyro",
        ),
        name_suffixes=("Mobile", "Phones", "Telecom", "Devices", "Wireless", "Comms"),
        attribute_templates={
            "os": (
                "{name} is a mobile phone brand that {phrase}.",
                "Reviewers note that {name} {phrase} across its current lineup.",
                "The brand {name} {phrase}, according to its product pages.",
            ),
            "manufacturer_region": (
                "{name} {phrase} with factories supplying several markets.",
                "Industry reports state that {name} {phrase}.",
                "{name}, a handset maker, {phrase}.",
            ),
            "listed": (
                "{name} {phrase} and publishes quarterly shipment figures.",
                "Financial press coverage mentions that {name} {phrase}.",
            ),
        },
        generic_templates=(
            "{name} is a brand of mobile phones sold in many countries.",
            "The handset maker {name} unveiled a new flagship model last year.",
            "Retail partners expanded distribution of {name} devices.",
            "{name} competes in the crowded smartphone market.",
        ),
    )


def _countries() -> ClassSchema:
    return _schema(
        name="countries",
        description="Countries of the world",
        attributes={
            "continent": ("africa", "asia", "europe", "americas"),
            "income_level": ("high", "low"),
            "driving_side": ("right", "left"),
        },
        value_phrases={
            ("continent", "africa"): "is located on the African continent",
            ("continent", "asia"): "is located on the Asian continent",
            ("continent", "europe"): "is located on the European continent",
            ("continent", "americas"): "is located in the Americas",
            ("income_level", "high"): "is classified as a high-income economy",
            ("income_level", "low"): "is classified as a low-income economy",
            ("driving_side", "right"): "drives on the right-hand side of the road",
            ("driving_side", "left"): "drives on the left-hand side of the road",
        },
        name_prefixes=(
            "Avaria", "Belmora", "Corvia", "Daland", "Estara", "Fenwick",
            "Galdia", "Hestria", "Ivoria", "Jorland", "Kestel", "Lumara",
            "Meridia", "Norvia",
        ),
        name_suffixes=("", "Republic", "Islands", "Federation", "Union", "Kingdom"),
        attribute_templates={
            "continent": (
                "{name} {phrase} and maintains regional trade agreements.",
                "Geographically, {name} {phrase}.",
                "The nation of {name} {phrase}.",
            ),
            "income_level": (
                "{name} {phrase} according to development statistics.",
                "Economists report that {name} {phrase}.",
            ),
            "driving_side": (
                "Traffic in {name} {phrase}.",
                "Visitors notice that {name} {phrase}.",
            ),
        },
        generic_templates=(
            "{name} is a sovereign country with its own flag and anthem.",
            "The capital of {name} hosts several international summits.",
            "{name} participates in multilateral organisations.",
            "Tourism to {name} has grown steadily over the past decade.",
        ),
    )


def _china_cities() -> ClassSchema:
    return _schema(
        name="china_cities",
        description="Cities of China",
        attributes={
            "region": ("coastal", "inland"),
            "population_tier": ("megacity", "midsize"),
            "provincial_capital": ("yes", "no"),
        },
        value_phrases={
            ("region", "coastal"): "lies on the eastern coast near major shipping lanes",
            ("region", "inland"): "lies deep inland away from the coastline",
            ("population_tier", "megacity"): "is a megacity with well over ten million residents",
            ("population_tier", "midsize"): "is a midsize city with a modest population",
            ("provincial_capital", "yes"): "serves as the capital of its province",
            ("provincial_capital", "no"): "is not a provincial capital",
        },
        name_prefixes=(
            "Xinlan", "Baihe", "Qingyun", "Luoshan", "Meilin", "Tengzhou",
            "Huaguang", "Yunxi", "Zhenhai", "Anping", "Jinpu", "Shuangfeng",
        ),
        name_suffixes=("", "City", ""),
        attribute_templates={
            "region": (
                "{name} {phrase}.",
                "The city of {name} {phrase}.",
            ),
            "population_tier": (
                "{name} {phrase}.",
                "Census data shows that {name} {phrase}.",
            ),
            "provincial_capital": (
                "{name} {phrase}.",
                "Administratively, {name} {phrase}.",
            ),
        },
        generic_templates=(
            "{name} is a city in China known for its local cuisine.",
            "A new high-speed rail link now serves {name}.",
            "{name} hosts an annual cultural festival each spring.",
            "Manufacturing remains a pillar of the economy of {name}.",
        ),
    )


def _chemical_elements() -> ClassSchema:
    return _schema(
        name="chemical_elements",
        description="Chemical elements",
        attributes={
            "state": ("solid", "gas", "liquid"),
            "category": ("metal", "nonmetal"),
            "occurrence": ("natural", "synthetic"),
        },
        value_phrases={
            ("state", "solid"): "is solid at standard temperature and pressure",
            ("state", "gas"): "is gaseous at standard temperature and pressure",
            ("state", "liquid"): "is liquid at standard temperature and pressure",
            ("category", "metal"): "is classified chemically as a metal",
            ("category", "nonmetal"): "is classified chemically as a nonmetal",
            ("occurrence", "natural"): "occurs naturally on Earth",
            ("occurrence", "synthetic"): "is produced only synthetically in laboratories",
        },
        name_prefixes=(
            "Zelth", "Quorv", "Brenn", "Altar", "Myst", "Cryon", "Velar",
            "Oxel", "Thall", "Nerid", "Sorb", "Kryp",
        ),
        name_suffixes=("ium", "ine", "on", "ite"),
        attribute_templates={
            "state": (
                "The element {name} {phrase}.",
                "{name} {phrase}, as recorded in reference tables.",
            ),
            "category": (
                "{name} {phrase}.",
                "Chemists describe {name} as an element that {phrase}.",
            ),
            "occurrence": (
                "{name} {phrase}.",
                "Samples of {name} show that it {phrase}.",
            ),
        },
        generic_templates=(
            "{name} is a chemical element listed in the periodic table.",
            "Spectral lines of {name} were first measured in the nineteenth century.",
            "Industrial processes consume small quantities of {name}.",
            "{name} forms several well-studied compounds.",
        ),
    )


def _canada_universities() -> ClassSchema:
    return _schema(
        name="canada_universities",
        description="Universities in Canada",
        attributes={
            "language": ("english", "french", "bilingual"),
            "funding": ("public", "private"),
            "region": ("east", "west"),
        },
        value_phrases={
            ("language", "english"): "teaches primarily in English",
            ("language", "french"): "teaches primarily in French",
            ("language", "bilingual"): "offers bilingual instruction in English and French",
            ("funding", "public"): "is a publicly funded institution",
            ("funding", "private"): "is a privately funded institution",
            ("region", "east"): "is located in eastern Canada",
            ("region", "west"): "is located in western Canada",
        },
        name_prefixes=(
            "Maplewood", "Northgate", "Lakeshore", "Stonebridge", "Clearwater",
            "Riverton", "Blackspruce", "Whitehorn", "Silverpine", "Greyfield",
        ),
        name_suffixes=("University", "Institute", "College"),
        attribute_templates={
            "language": (
                "{name} {phrase}.",
                "Students at {name} report that it {phrase}.",
            ),
            "funding": (
                "{name} {phrase}.",
                "As an institution, {name} {phrase}.",
            ),
            "region": (
                "{name} {phrase}.",
                "The campus of {name} {phrase}.",
            ),
        },
        generic_templates=(
            "{name} is a university located in Canada.",
            "{name} enrols thousands of undergraduate students each year.",
            "Researchers at {name} published new findings this term.",
            "{name} maintains exchange agreements with overseas partners.",
        ),
    )


def _nobel_laureates() -> ClassSchema:
    return _schema(
        name="nobel_laureates",
        description="Nobel Prize laureates",
        attributes={
            "field": ("physics", "chemistry", "literature", "peace"),
            "era": ("pre1980", "post1980"),
        },
        value_phrases={
            ("field", "physics"): "received the Nobel Prize in Physics",
            ("field", "chemistry"): "received the Nobel Prize in Chemistry",
            ("field", "literature"): "received the Nobel Prize in Literature",
            ("field", "peace"): "received the Nobel Peace Prize",
            ("era", "pre1980"): "was honoured before 1980",
            ("era", "post1980"): "was honoured after 1980",
        },
        name_prefixes=(
            "Aldric", "Beatrix", "Casimir", "Delphine", "Emeric", "Fiora",
            "Gustav", "Helena", "Isidor", "Johanna", "Klemens", "Lavinia",
        ),
        name_suffixes=("Varga", "Olsson", "Marchetti", "Kowalski", "Dubois", "Lindqvist", "Haruki", "Okafor"),
        attribute_templates={
            "field": (
                "{name} {phrase} for pioneering work.",
                "The laureate {name} {phrase}.",
            ),
            "era": (
                "{name} {phrase}.",
                "Records show that {name} {phrase}.",
            ),
        },
        generic_templates=(
            "{name} is remembered as a Nobel laureate of great influence.",
            "A biography of {name} was published to wide acclaim.",
            "{name} lectured at universities around the world.",
            "An archive preserves the correspondence of {name}.",
        ),
    )


def _percussion_instruments() -> ClassSchema:
    return _schema(
        name="percussion_instruments",
        description="Percussion instruments",
        attributes={
            "pitch": ("pitched", "unpitched"),
            "origin": ("western", "non_western"),
        },
        value_phrases={
            ("pitch", "pitched"): "produces definite pitches that can carry a melody",
            ("pitch", "unpitched"): "produces indefinite pitch used for rhythm",
            ("origin", "western"): "originates from the Western orchestral tradition",
            ("origin", "non_western"): "originates outside the Western orchestral tradition",
        },
        name_prefixes=(
            "Tambo", "Kalira", "Dunra", "Mbeka", "Zillo", "Cajua", "Timbra",
            "Gonga", "Rattla", "Bodhra", "Clava", "Marimbel",
        ),
        name_suffixes=("drum", "phone", "bells", "block", ""),
        attribute_templates={
            "pitch": (
                "The {name} {phrase}.",
                "Played with mallets, the {name} {phrase}.",
            ),
            "origin": (
                "The {name} {phrase}.",
                "Ethnomusicologists note that the {name} {phrase}.",
            ),
        },
        generic_templates=(
            "The {name} is a percussion instrument used in ensembles.",
            "Drummers often feature the {name} in live performances.",
            "The {name} appears in several contemporary recordings.",
            "Makers craft the {name} from wood and skin.",
        ),
    )


def _us_airports() -> ClassSchema:
    return _schema(
        name="us_airports",
        description="Airports in the United States",
        attributes={
            "hub_size": ("large_hub", "regional"),
            "coast": ("east_coast", "west_coast", "interior"),
            "international": ("international", "domestic"),
        },
        value_phrases={
            ("hub_size", "large_hub"): "operates as a large hub with dozens of gates",
            ("hub_size", "regional"): "operates as a small regional field",
            ("coast", "east_coast"): "sits near the eastern seaboard of the United States",
            ("coast", "west_coast"): "sits near the western seaboard of the United States",
            ("coast", "interior"): "sits in the interior of the United States",
            ("international", "international"): "handles scheduled international flights",
            ("international", "domestic"): "handles only domestic flights",
        },
        name_prefixes=(
            "Fairmont", "Cedar Ridge", "Eagle Pass", "Harborview", "Prairie",
            "Redstone", "Bluewater", "Summit", "Oakdale", "Canyon",
        ),
        name_suffixes=("Airport", "Field", "Regional Airport", "International Airport"),
        attribute_templates={
            "hub_size": (
                "{name} {phrase}.",
                "Passenger statistics show that {name} {phrase}.",
            ),
            "coast": (
                "{name} {phrase}.",
                "Geographically, {name} {phrase}.",
            ),
            "international": (
                "{name} {phrase}.",
                "The timetable confirms that {name} {phrase}.",
            ),
        },
        generic_templates=(
            "{name} serves travellers in the United States.",
            "A new terminal opened at {name} after years of construction.",
            "{name} reported record passenger numbers last summer.",
            "Several carriers base crews at {name}.",
        ),
    )


def _us_national_monuments() -> ClassSchema:
    return _schema(
        name="us_national_monuments",
        description="National monuments of the United States",
        attributes={
            "landform": ("canyon", "forest", "desert"),
            "managing_agency": ("park_service", "land_bureau"),
        },
        value_phrases={
            ("landform", "canyon"): "protects a dramatic canyon landscape",
            ("landform", "forest"): "protects an ancient forest landscape",
            ("landform", "desert"): "protects a fragile desert landscape",
            ("managing_agency", "park_service"): "is managed by the National Park Service",
            ("managing_agency", "land_bureau"): "is managed by the Bureau of Land Management",
        },
        name_prefixes=(
            "Granite Spire", "Painted Mesa", "Silver Hollow", "Thunder Basin",
            "Juniper Flats", "Obsidian Ridge", "Whispering Pines", "Salt Fork",
            "Crimson Butte", "Hidden Arch",
        ),
        name_suffixes=("National Monument",),
        attribute_templates={
            "landform": (
                "{name} {phrase}.",
                "Visitors to {name} find that it {phrase}.",
            ),
            "managing_agency": (
                "{name} {phrase}.",
                "Signage notes that {name} {phrase}.",
            ),
        },
        generic_templates=(
            "{name} is a protected national monument in the United States.",
            "{name} draws hikers and photographers throughout the year.",
            "A visitor centre at {name} explains the site's history.",
            "{name} was proclaimed by presidential order.",
        ),
    )


def _us_presidents() -> ClassSchema:
    return _schema(
        name="us_presidents",
        description="Presidents of the United States",
        attributes={
            "party": ("federalist", "unionist"),
            "century": ("nineteenth", "twentieth"),
            "terms": ("one_term", "two_terms"),
        },
        value_phrases={
            ("party", "federalist"): "was elected as a member of the Federalist coalition",
            ("party", "unionist"): "was elected as a member of the Unionist coalition",
            ("century", "nineteenth"): "served during the nineteenth century",
            ("century", "twentieth"): "served during the twentieth century",
            ("terms", "one_term"): "served a single term in office",
            ("terms", "two_terms"): "won re-election and served two terms",
        },
        name_prefixes=(
            "Abner", "Bartholomew", "Cornelius", "Demetrius", "Ezekiel",
            "Franklin", "Gideon", "Horatio", "Ignatius", "Jeremiah",
        ),
        name_suffixes=("Whitfield", "Harrow", "Caldwell", "Prescott", "Mason", "Langley", "Thorne", "Everett"),
        attribute_templates={
            "party": (
                "President {name} {phrase}.",
                "{name} {phrase} and campaigned on that platform.",
            ),
            "century": (
                "{name} {phrase}.",
                "Historians place {name} among leaders who {phrase}.",
            ),
            "terms": (
                "{name} {phrase}.",
                "Election records show that {name} {phrase}.",
            ),
        },
        generic_templates=(
            "{name} served as President of the United States.",
            "The presidency of {name} shaped national policy.",
            "A memorial library preserves the papers of {name}.",
            "{name} delivered a widely quoted inaugural address.",
        ),
    )


_SCHEMA_BUILDERS = (
    _countries,
    _mobile_phone_brands,
    _china_cities,
    _chemical_elements,
    _canada_universities,
    _nobel_laureates,
    _percussion_instruments,
    _us_airports,
    _us_national_monuments,
    _us_presidents,
)


def default_schemas(limit: int | None = None) -> list[ClassSchema]:
    """The ten fine-grained class schemas (optionally only the first ``limit``)."""
    schemas = [builder() for builder in _SCHEMA_BUILDERS]
    if limit is not None:
        if limit < 1 or limit > len(schemas):
            raise DatasetError(f"limit must be in [1, {len(schemas)}], got {limit}")
        schemas = schemas[:limit]
    return schemas


def schema_by_name(name: str) -> ClassSchema:
    """Look up a schema by class name."""
    for schema in default_schemas():
        if schema.name == name:
            return schema
    raise DatasetError(f"unknown fine-grained class {name!r}")
