"""Corpus container: sentences, entity mentions, and derived indexes."""

from __future__ import annotations

from collections import defaultdict
from pathlib import Path
from typing import Iterable, Iterator

from repro.exceptions import DatasetError
from repro.text.bm25 import BM25Index
from repro.text.tokenizer import MASK_TOKEN, WordTokenizer
from repro.types import Sentence
from repro.utils.iox import read_jsonl, write_jsonl


class Corpus:
    """Holds the sentence collection and entity → sentence alignment.

    The corpus supports the two access patterns the models need:

    * ``sentences_of(entity_id)`` — all sentences mentioning an entity
      (the paper aligns these through Wikipedia hyperlinks);
    * ``masked_text(sentence, entity)`` — the sentence with the entity
      mention replaced by ``[MASK]``, the input of the context encoder.
    """

    def __init__(self, sentences: Iterable[Sentence] = ()):
        self._sentences: dict[int, Sentence] = {}
        self._by_entity: dict[int, list[int]] = defaultdict(list)
        for sentence in sentences:
            self.add(sentence)

    # -- construction --------------------------------------------------------
    def add(self, sentence: Sentence) -> None:
        if sentence.sentence_id in self._sentences:
            raise DatasetError(f"duplicate sentence id {sentence.sentence_id}")
        self._sentences[sentence.sentence_id] = sentence
        for entity_id in sentence.entity_ids:
            self._by_entity[entity_id].append(sentence.sentence_id)

    # -- access ---------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._sentences)

    def __iter__(self) -> Iterator[Sentence]:
        return iter(self._sentences.values())

    def sentence(self, sentence_id: int) -> Sentence:
        try:
            return self._sentences[sentence_id]
        except KeyError as exc:
            raise DatasetError(f"unknown sentence id {sentence_id}") from exc

    def sentences_of(self, entity_id: int) -> list[Sentence]:
        """All sentences mentioning ``entity_id`` (may be empty)."""
        return [self._sentences[sid] for sid in self._by_entity.get(entity_id, [])]

    def entity_mention_counts(self) -> dict[int, int]:
        """Number of sentences mentioning each entity."""
        return {entity_id: len(sids) for entity_id, sids in self._by_entity.items()}

    @staticmethod
    def masked_text(sentence: Sentence, entity_name: str) -> str:
        """The sentence text with ``entity_name`` replaced by ``[MASK]``.

        If the surface form does not appear verbatim (should not happen with
        the synthetic generator) the mask token is prepended so the encoder
        still has a mask position to read.
        """
        if entity_name and entity_name in sentence.text:
            return sentence.text.replace(entity_name, MASK_TOKEN)
        return f"{MASK_TOKEN} {sentence.text}"

    # -- derived indexes -------------------------------------------------------
    def build_bm25(self, tokenizer: WordTokenizer | None = None) -> BM25Index:
        """Build a BM25 index over all sentences."""
        tokenizer = tokenizer or WordTokenizer()
        index = BM25Index()
        for sentence in self:
            index.add_document(sentence.sentence_id, tokenizer.tokenize(sentence.text))
        return index

    # -- persistence -----------------------------------------------------------
    def save(self, path: str | Path) -> int:
        """Persist the corpus as JSON lines; returns the number of rows."""
        return write_jsonl(path, (s.to_dict() for s in self))

    @classmethod
    def load(cls, path: str | Path) -> "Corpus":
        return cls(Sentence.from_dict(row) for row in read_jsonl(path))
