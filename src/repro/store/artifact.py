"""Persistent, content-addressed store of fitted expander artifacts.

``Expander.fit`` dominates the cost of every method in this repo, and the
serving registry (PR 1) only amortises it *within* one process.  The
:class:`ArtifactStore` turns a fit into a build-once artifact on disk, keyed
by ``(method, dataset fingerprint)`` and stamped with a format version, so
that restarts, deploys, and sibling worker processes restore fitted state
instead of re-training it.

Layout (one directory per artifact; the format version is part of the path
so differently-versioned builds sharing a store coexist instead of evicting
each other's artifacts)::

    <root>/
      <method>/<fingerprint>.v<format_version>/
        manifest.json          # key, versions, checksums, sizes, created-at,
                               # and the substrate references (content hashes)
        state/...              # whatever Expander.save_state wrote
      .substrates/<kind>/<content_hash>.v<format_version>/
        manifest.json          # kind, key, checksums, sizes, created-at
        state/...              # the substrate's serialised state
      .tmp/                    # staging area for in-flight writes

Shared substrates (co-occurrence embeddings, entity representations, the
causal entity LM) are stored **once**, content-addressed under
``.substrates``, and method manifests *reference* them by content hash
instead of embedding a private copy per method.  GC is reference-aware: a
substrate is never collected while a surviving method manifest points at
it, and a substrate orphaned by method evictions is collected instead of
stranding its bytes.

Writes are atomic: state is staged under ``.tmp`` and moved into place with
one ``os.replace``-style rename, so a crashed writer never leaves a
half-written artifact where a reader could find it.  Restores verify the
manifest's format/state versions and every file checksum before any state is
deserialised; corrupt or version-mismatched artifacts raise a
:class:`~repro.exceptions.StoreError` subtype that consumers treat as a miss
(fall back to refit, then overwrite).
"""

from __future__ import annotations

import os
import platform
import shutil
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.exceptions import (
    ArtifactCorruptError,
    ArtifactNotFoundError,
    ArtifactVersionError,
    PersistenceError,
    StoreError,
)
from repro.store.serialization import read_json_state, sha256_file, write_json_state

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports store)
    from repro.core.base import Expander
    from repro.dataset.ultrawiki import UltraWikiDataset

#: bump when the store layout or manifest schema changes incompatibly.
FORMAT_VERSION = 1

_MANIFEST_NAME = "manifest.json"
_STATE_DIR = "state"

#: dot-directory (skipped by ``ls``) holding content-addressed substrates.
_SUBSTRATES_DIRNAME = ".substrates"

#: marker file (next to the manifest, outside the checksummed state tree)
#: whose mtime records the most recent restore — the signal the size-budget
#: GC uses to evict least-recently-restored artifacts first.
_RESTORED_MARKER = "restored_at"

#: staging directories younger than this are treated as in-flight saves and
#: left alone by ``gc`` — deleting them would race a concurrent writer.
_STALE_TMP_SECONDS = 3600.0

#: unreferenced substrate artifacts younger than this are never collected:
#: a substrate is published *before* the method manifest that references it
#: renames into place, so a fresh orphan may simply be mid-publication (or a
#: deliberate ``repro fit --substrates-only`` prefit awaiting its consumers).
_ORPHAN_GRACE_SECONDS = 600.0

#: how long a computed ``stats()`` summary may be served from memory; the
#: summary requires a full manifest scan, and /stats gets polled.
_STATS_TTL_SECONDS = 5.0


@dataclass(frozen=True)
class ArtifactInfo:
    """One row of ``ArtifactStore.ls()`` — the manifest, summarised."""

    method: str
    fingerprint: str
    format_version: int
    state_version: int
    expander_class: str
    created_at: float
    total_bytes: int
    num_files: int
    path: str
    library_versions: dict = field(default_factory=dict)
    #: substrate references from the manifest: tuples of
    #: ``{"kind", "content_hash", "params_hash"}`` dicts.
    substrates: tuple = ()

    @property
    def age_seconds(self) -> float:
        return max(0.0, time.time() - self.created_at)


@dataclass(frozen=True)
class SubstrateArtifactInfo:
    """One row of ``ArtifactStore.ls_substrates()`` — a substrate, summarised."""

    kind: str
    content_hash: str
    fingerprint: str
    params_hash: str
    format_version: int
    created_at: float
    total_bytes: int
    num_files: int
    path: str

    @property
    def age_seconds(self) -> float:
        return max(0.0, time.time() - self.created_at)


class _ManifestSubstrates:
    """Resolver handed to ``Expander.load_state`` during a restore: it loads
    exactly the substrates the method manifest references, checksum-verified,
    from this store's content-addressed artifacts."""

    def __init__(self, store: "ArtifactStore", refs: list[dict]):
        self._store = store
        self._refs = {(ref["kind"], ref["content_hash"]) for ref in refs}

    def has(self, kind: str, content_hash: str) -> bool:
        return (kind, content_hash) in self._refs

    def load(self, kind: str, content_hash: str, loader):
        return self._store.restore_substrate(kind, content_hash, loader)


class ArtifactStore:
    """Saves and restores fitted expander state under one root directory."""

    def __init__(self, root: str | Path, format_version: int = FORMAT_VERSION):
        if format_version < 1:
            raise StoreError("format_version must be >= 1")
        self.root = Path(root)
        self.format_version = format_version
        self.root.mkdir(parents=True, exist_ok=True)
        self._tmp_root = self.root / ".tmp"
        # Serialises publishes/evictions within this process; cross-process
        # safety comes from staging + atomic rename.
        self._lock = threading.Lock()
        #: short-lived cache of :meth:`stats` (a full manifest scan) so that
        #: polling a monitoring endpoint does not hammer the filesystem.
        self._stats_cache: tuple[float, dict] | None = None

    # -- paths -------------------------------------------------------------------
    @staticmethod
    def _normalize(method: str) -> str:
        method = method.strip().lower()
        if not method or any(sep in method for sep in ("/", "\\", "..")):
            raise StoreError(f"invalid method name {method!r}")
        if method.startswith("."):
            # Dot-names would collide with store-internal directories
            # (``.tmp``, ``.fitlocks``, ``.substrates``).
            raise StoreError(f"invalid method name {method!r}")
        return method

    def artifact_dir(self, method: str, fingerprint: str) -> Path:
        """The directory an artifact for this store's key lives in.

        The format version is part of the path, not just the manifest, so
        mixed-version fleets sharing one store simply *miss* each other's
        artifacts (and coexist) instead of evicting and rewriting them back
        and forth on every cold start.
        """
        if not fingerprint or any(sep in fingerprint for sep in ("/", "\\", "..")):
            raise StoreError(f"invalid fingerprint {fingerprint!r}")
        return self.root / self._normalize(method) / f"{fingerprint}.v{self.format_version}"

    def contains(self, method: str, fingerprint: str) -> bool:
        """True when an artifact directory with a manifest exists (unverified)."""
        return (self.artifact_dir(method, fingerprint) / _MANIFEST_NAME).exists()

    # -- writing -----------------------------------------------------------------
    def save(self, method: str, fingerprint: str, expander: "Expander") -> ArtifactInfo:
        """Persist ``expander``'s fitted state, replacing any previous artifact.

        The expander writes into a staging directory; the manifest (with a
        checksum and size per file) is written last and the whole directory
        is renamed into place in one step.

        Substrates the fit depends on are published (idempotently) into this
        store's content-addressed ``.substrates`` area *before* the method
        manifest referencing them appears, so a reader can never observe a
        manifest with dangling substrate references.
        """
        method = self._normalize(method)
        target = self.artifact_dir(method, fingerprint)
        substrates = expander.publish_substrates(self)
        self._tmp_root.mkdir(parents=True, exist_ok=True)
        staging = self._tmp_root / f"{method}-{fingerprint}-{uuid.uuid4().hex}"
        state_dir = staging / _STATE_DIR
        state_dir.mkdir(parents=True)
        try:
            expander.save_state(state_dir)
            files = self._checksum_tree(state_dir)
            manifest = {
                "method": method,
                "fingerprint": fingerprint,
                "format_version": self.format_version,
                "state_version": type(expander).state_version,
                "expander_class": type(expander).__name__,
                "created_at": time.time(),
                "library_versions": {
                    "python": platform.python_version(),
                    "numpy": np.__version__,
                },
                "substrates": substrates,
                "files": files,
            }
            write_json_state(staging / _MANIFEST_NAME, manifest)
            with self._lock:
                target.parent.mkdir(parents=True, exist_ok=True)
                if target.exists():
                    # Move the old artifact aside first so readers never see
                    # a partially-deleted directory at the published path.
                    graveyard = self._tmp_root / f"evicted-{uuid.uuid4().hex}"
                    os.replace(target, graveyard)
                    shutil.rmtree(graveyard, ignore_errors=True)
                os.replace(staging, target)
                self._stats_cache = None
        except StoreError:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        except PersistenceError:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        except OSError as exc:
            shutil.rmtree(staging, ignore_errors=True)
            raise StoreError(f"cannot write artifact {method}/{fingerprint}: {exc}") from exc
        return self._info_from_manifest(manifest, target)

    @staticmethod
    def _checksum_tree(state_dir: Path) -> dict[str, dict]:
        files: dict[str, dict] = {}
        for path in sorted(state_dir.rglob("*")):
            if path.is_file():
                relative = path.relative_to(state_dir).as_posix()
                files[relative] = {
                    "sha256": sha256_file(path),
                    "bytes": path.stat().st_size,
                }
        return files

    # -- reading -----------------------------------------------------------------
    def _read_manifest(self, method: str, fingerprint: str) -> tuple[dict, Path]:
        target = self.artifact_dir(method, fingerprint)
        manifest_path = target / _MANIFEST_NAME
        if not manifest_path.exists():
            raise ArtifactNotFoundError(
                f"no artifact for method={method!r} fingerprint={fingerprint!r}"
            )
        manifest = read_json_state(manifest_path)
        for key in ("method", "fingerprint", "format_version", "state_version", "files"):
            if key not in manifest:
                raise ArtifactCorruptError(f"manifest {manifest_path} lacks {key!r}")
        return manifest, target

    def verify(self, method: str, fingerprint: str) -> ArtifactInfo:
        """Check versions and every file checksum; raise a StoreError on failure."""
        manifest, target = self._read_manifest(method, fingerprint)
        if int(manifest["format_version"]) != self.format_version:
            raise ArtifactVersionError(
                f"artifact {method}/{fingerprint} has format_version "
                f"{manifest['format_version']}, store expects {self.format_version}"
            )
        state_dir = target / _STATE_DIR
        for relative, meta in manifest["files"].items():
            path = state_dir / relative
            try:
                if not path.is_file():
                    raise ArtifactCorruptError(
                        f"artifact {method}/{fingerprint} lost state file {relative!r}"
                    )
                if (
                    path.stat().st_size != int(meta["bytes"])
                    or sha256_file(path) != meta["sha256"]
                ):
                    raise ArtifactCorruptError(
                        f"artifact {method}/{fingerprint} checksum mismatch on {relative!r}"
                    )
            except OSError as exc:
                # A concurrent evict/replace can remove files mid-scan; the
                # caller must see a StoreError, never a raw filesystem error.
                raise ArtifactCorruptError(
                    f"artifact {method}/{fingerprint} became unreadable: {exc}"
                ) from exc
        return self._info_from_manifest(manifest, target)

    def restore(
        self,
        method: str,
        fingerprint: str,
        expander: "Expander",
        dataset: "UltraWikiDataset",
    ) -> ArtifactInfo:
        """Verify the artifact, then load its state into ``expander``.

        Any failure during deserialisation is reported as corruption so that
        callers uniformly fall back to refitting.
        """
        info = self.verify(method, fingerprint)
        if info.state_version != type(expander).state_version:
            raise ArtifactVersionError(
                f"artifact {method}/{fingerprint} has state_version "
                f"{info.state_version}, expander {type(expander).__name__} "
                f"expects {type(expander).state_version}"
            )
        if info.expander_class != type(expander).__name__:
            raise ArtifactVersionError(
                f"artifact {method}/{fingerprint} was saved by "
                f"{info.expander_class}, not {type(expander).__name__}"
            )
        refs = list(info.substrates)
        for ref in refs:
            # Reference-aware GC keeps this invariant; enforce it defensively
            # so an externally-mutilated store degrades to a refit, not a
            # half-restored expander.
            if not self.contains_substrate(ref["kind"], ref["content_hash"]):
                raise ArtifactCorruptError(
                    f"artifact {method}/{fingerprint} references missing "
                    f"substrate {ref['kind']}/{ref['content_hash']}"
                )
        state_dir = self.artifact_dir(method, fingerprint) / _STATE_DIR
        resolver = _ManifestSubstrates(self, refs) if refs else None
        try:
            expander.load_state(state_dir, dataset, substrates=resolver)
        except StoreError:
            raise
        except PersistenceError as exc:
            # The state is intact but was fitted under an incompatible
            # expander configuration — a version-style mismatch, not
            # corruption, so consumers refit without evicting the artifact.
            raise ArtifactVersionError(
                f"artifact {method}/{fingerprint} does not match this "
                f"expander configuration: {exc}"
            ) from exc
        except Exception as exc:  # noqa: BLE001 - any load failure means corrupt state
            raise ArtifactCorruptError(
                f"artifact {method}/{fingerprint} failed to load: {exc}"
            ) from exc
        self._touch_restored(self.artifact_dir(method, fingerprint))
        return info

    @staticmethod
    def _touch_restored(artifact_dir: Path) -> None:
        """Record a restore by (re)stamping the marker's mtime.  Best-effort:
        a read-only store must not turn a successful restore into a failure."""
        marker = artifact_dir / _RESTORED_MARKER
        try:
            marker.touch(exist_ok=True)
            os.utime(marker)
        except OSError:
            pass

    @staticmethod
    def last_used_at(info) -> float:
        """When the artifact (method or substrate — both carry ``path`` and
        ``created_at``) was last restored (marker mtime), falling back to
        its creation time — the recency signal for budget eviction."""
        marker = Path(info.path) / _RESTORED_MARKER
        try:
            return max(info.created_at, marker.stat().st_mtime)
        except OSError:
            return info.created_at

    # -- substrates --------------------------------------------------------------
    @staticmethod
    def _normalize_substrate(kind: str, content_hash: str) -> tuple[str, str]:
        for value, label in ((kind, "substrate kind"), (content_hash, "content hash")):
            if (
                not value
                or value.startswith(".")
                or any(sep in value for sep in ("/", "\\", ".."))
            ):
                raise StoreError(f"invalid {label} {value!r}")
        return kind, content_hash

    def substrate_dir(self, kind: str, content_hash: str) -> Path:
        """Where the content-addressed substrate artifact lives."""
        kind, content_hash = self._normalize_substrate(kind, content_hash)
        return (
            self.root
            / _SUBSTRATES_DIRNAME
            / kind
            / f"{content_hash}.v{self.format_version}"
        )

    def contains_substrate(self, kind: str, content_hash: str) -> bool:
        """True when a substrate artifact with a manifest exists (unverified)."""
        return (self.substrate_dir(kind, content_hash) / _MANIFEST_NAME).exists()

    def save_substrate(
        self,
        kind: str,
        content_hash: str,
        fingerprint: str,
        params_hash: str,
        writer,
    ) -> SubstrateArtifactInfo:
        """Persist one substrate under its content address (idempotent).

        ``writer`` serialises the substrate's fitted state into the staging
        state directory; the write is staged and atomically renamed exactly
        like a method artifact.  Content addressing makes the operation
        idempotent: an existing artifact is returned untouched, so several
        methods publishing the same substrate never rewrite it.
        """
        target = self.substrate_dir(kind, content_hash)
        if (target / _MANIFEST_NAME).exists():
            return self._substrate_info_from_manifest(
                read_json_state(target / _MANIFEST_NAME), target
            )
        self._tmp_root.mkdir(parents=True, exist_ok=True)
        staging = self._tmp_root / f"substrate-{kind}-{content_hash}-{uuid.uuid4().hex}"
        state_dir = staging / _STATE_DIR
        state_dir.mkdir(parents=True)
        try:
            writer(state_dir)
            manifest = {
                "kind": kind,
                "content_hash": content_hash,
                "fingerprint": fingerprint,
                "params_hash": params_hash,
                "format_version": self.format_version,
                "created_at": time.time(),
                "library_versions": {
                    "python": platform.python_version(),
                    "numpy": np.__version__,
                },
                "files": self._checksum_tree(state_dir),
            }
            write_json_state(staging / _MANIFEST_NAME, manifest)
            with self._lock:
                target.parent.mkdir(parents=True, exist_ok=True)
                if target.exists():
                    # Another publisher won the race; the content address
                    # guarantees equivalence, so keep theirs.
                    shutil.rmtree(staging, ignore_errors=True)
                else:
                    os.replace(staging, target)
                self._stats_cache = None
        except (StoreError, PersistenceError):
            shutil.rmtree(staging, ignore_errors=True)
            raise
        except OSError as exc:
            shutil.rmtree(staging, ignore_errors=True)
            raise StoreError(
                f"cannot write substrate {kind}/{content_hash}: {exc}"
            ) from exc
        return self._substrate_info_from_manifest(manifest, target)

    def _read_substrate_manifest(
        self, kind: str, content_hash: str
    ) -> tuple[dict, Path]:
        target = self.substrate_dir(kind, content_hash)
        manifest_path = target / _MANIFEST_NAME
        if not manifest_path.exists():
            raise ArtifactNotFoundError(
                f"no substrate artifact {kind}/{content_hash}"
            )
        manifest = read_json_state(manifest_path)
        for key in ("kind", "content_hash", "format_version", "files"):
            if key not in manifest:
                raise ArtifactCorruptError(f"manifest {manifest_path} lacks {key!r}")
        return manifest, target

    def verify_substrate(self, kind: str, content_hash: str) -> SubstrateArtifactInfo:
        """Check every file checksum of a substrate artifact."""
        manifest, target = self._read_substrate_manifest(kind, content_hash)
        state_dir = target / _STATE_DIR
        for relative, meta in manifest["files"].items():
            path = state_dir / relative
            try:
                if (
                    not path.is_file()
                    or path.stat().st_size != int(meta["bytes"])
                    or sha256_file(path) != meta["sha256"]
                ):
                    raise ArtifactCorruptError(
                        f"substrate {kind}/{content_hash} checksum mismatch "
                        f"on {relative!r}"
                    )
            except OSError as exc:
                raise ArtifactCorruptError(
                    f"substrate {kind}/{content_hash} became unreadable: {exc}"
                ) from exc
        return self._substrate_info_from_manifest(manifest, target)

    def restore_substrate(self, kind: str, content_hash: str, loader):
        """Verify the substrate artifact, then run ``loader`` on its state dir.

        Any loader failure is reported as corruption so callers uniformly
        fall back to refitting (and republishing) the substrate.
        """
        self.verify_substrate(kind, content_hash)
        state_dir = self.substrate_dir(kind, content_hash) / _STATE_DIR
        try:
            instance = loader(state_dir)
        except StoreError:
            raise
        except Exception as exc:  # noqa: BLE001 - any load failure means corrupt state
            raise ArtifactCorruptError(
                f"substrate {kind}/{content_hash} failed to load: {exc}"
            ) from exc
        self._touch_restored(self.substrate_dir(kind, content_hash))
        return instance

    def ls_substrates(self) -> list[SubstrateArtifactInfo]:
        """All substrate artifacts, newest first (unreadable ones skipped)."""
        infos: list[SubstrateArtifactInfo] = []
        substrates_root = self.root / _SUBSTRATES_DIRNAME
        if not substrates_root.exists():
            return infos
        for kind_dir in sorted(substrates_root.iterdir()):
            if not kind_dir.is_dir():
                continue
            for artifact_dir in sorted(kind_dir.iterdir()):
                manifest_path = artifact_dir / _MANIFEST_NAME
                if not manifest_path.exists():
                    continue
                try:
                    manifest = read_json_state(manifest_path)
                    infos.append(
                        self._substrate_info_from_manifest(manifest, artifact_dir)
                    )
                except (StoreError, KeyError, TypeError, ValueError):
                    continue
        infos.sort(key=lambda info: -info.created_at)
        return infos

    def substrate_references(self) -> dict[tuple[str, str], list[str]]:
        """Back-references: ``(kind, content_hash)`` -> referencing methods.

        Scans every method manifest; the values are ``method/fingerprint``
        labels, the truth GC consults before touching any substrate.
        """
        references: dict[tuple[str, str], list[str]] = {}
        for info in self.ls():
            for ref in info.substrates:
                key = (str(ref.get("kind")), str(ref.get("content_hash")))
                references.setdefault(key, []).append(
                    f"{info.method}/{info.fingerprint}"
                )
        return references

    def evict_substrate(
        self, kind: str, content_hash: str, force: bool = False
    ) -> bool:
        """Remove a substrate artifact; refuses while method manifests still
        reference it unless ``force`` (used when the artifact is corrupt and
        useless to its referrers anyway)."""
        kind, content_hash = self._normalize_substrate(kind, content_hash)
        if not force:
            referencing = self.substrate_references().get((kind, content_hash))
            if referencing:
                raise StoreError(
                    f"substrate {kind}/{content_hash} is referenced by "
                    f"{sorted(referencing)}; evict those artifacts first"
                )
        return self._remove(self.substrate_dir(kind, content_hash))

    # -- management --------------------------------------------------------------
    def ls(self) -> list[ArtifactInfo]:
        """All artifacts in the store, newest first (unreadable ones skipped)."""
        infos: list[ArtifactInfo] = []
        if not self.root.exists():
            return infos
        for method_dir in sorted(self.root.iterdir()):
            if not method_dir.is_dir() or method_dir.name.startswith("."):
                continue
            for artifact_dir in sorted(method_dir.iterdir()):
                manifest_path = artifact_dir / _MANIFEST_NAME
                if not manifest_path.exists():
                    continue
                try:
                    manifest = read_json_state(manifest_path)
                    infos.append(self._info_from_manifest(manifest, artifact_dir))
                except (StoreError, KeyError, TypeError, ValueError):
                    continue
        infos.sort(key=lambda info: -info.created_at)
        return infos

    def evict(self, method: str, fingerprint: str) -> bool:
        """Remove this store version's artifact; returns True when it existed."""
        return self._remove(self.artifact_dir(method, fingerprint))

    def _remove(self, target: Path) -> bool:
        with self._lock:
            if not target.exists():
                return False
            self._tmp_root.mkdir(parents=True, exist_ok=True)
            graveyard = self._tmp_root / f"evicted-{uuid.uuid4().hex}"
            os.replace(target, graveyard)
            shutil.rmtree(graveyard, ignore_errors=True)
            self._prune_empty(target.parent)
            self._stats_cache = None
            return True

    def gc(
        self,
        keep_fingerprints: set[str] | None = None,
        max_age_seconds: float | None = None,
    ) -> list:
        """Remove stale artifacts and abandoned staging directories.

        An artifact is collected when its fingerprint is not in
        ``keep_fingerprints`` (if given) or it is older than
        ``max_age_seconds`` (if given); with neither filter only the staging
        area is cleaned.  Substrate artifacts matching the same filters are
        collected too, but **never** while a surviving method manifest still
        references them — the reference graph outranks every filter — and
        never within their publication grace period (a fresh orphan may be a
        save in flight whose referencing manifest has not landed yet).
        Staging directories are only removed once they are old enough to be
        abandoned, never while a concurrent ``save`` may still be writing
        into them.  Returns the artifacts removed (methods and substrates).
        """
        removed: list = []
        now = time.time()

        def stale(info, fingerprint: str) -> bool:
            if keep_fingerprints is not None and fingerprint not in keep_fingerprints:
                return True
            return (
                max_age_seconds is not None
                and now - info.created_at > max_age_seconds
            )

        for info in self.ls():
            # Remove via the listed path: ``ls`` surfaces artifacts of every
            # format version, including ones this store would not address.
            if stale(info, info.fingerprint) and self._remove(Path(info.path)):
                removed.append(info)
        if keep_fingerprints is not None or max_age_seconds is not None:
            references = self.substrate_references()
            for info in self.ls_substrates():
                if (info.kind, info.content_hash) in references:
                    continue  # still referenced: never collected by filters
                if now - info.created_at <= _ORPHAN_GRACE_SECONDS:
                    continue  # possibly mid-publication: a manifest may land
                if stale(info, info.fingerprint) and self._remove(Path(info.path)):
                    removed.append(info)
        if self._tmp_root.exists():
            for leftover in self._tmp_root.iterdir():
                try:
                    abandoned = now - leftover.stat().st_mtime > _STALE_TMP_SECONDS
                except OSError:
                    continue  # a concurrent save just renamed it away
                if abandoned:
                    shutil.rmtree(leftover, ignore_errors=True)
        return removed

    def gc_to_budget(self, max_bytes: int) -> list:
        """Evict artifacts, least-recently-restored first, until the store's
        total size (method artifacts plus substrates) fits under ``max_bytes``.

        This is the policy a long-running serving process applies
        periodically (see ``ServiceConfig.store_max_bytes``): artifacts that
        keep getting restored by workers stay, cold ones age out.  The pass
        is reference-aware: a substrate is only an eviction candidate while
        **no** surviving method manifest references it (and it is past its
        publication grace period), and evicting a method artifact
        immediately makes its now-orphaned substrates eligible, so budget
        pressure never strands substrate bytes behind deleted methods.
        Returns the artifacts removed, coldest first.
        """
        if max_bytes < 0:
            raise StoreError("max_bytes must be non-negative")
        methods = self.ls()
        substrates = self.ls_substrates()
        total = sum(info.total_bytes for info in methods) + sum(
            info.total_bytes for info in substrates
        )
        if total <= max_bytes:
            return []
        now = time.time()
        # One scan up front; the reference map and recency are maintained
        # incrementally as victims fall (evicting a method only ever drops
        # its own references), so the pass never re-reads manifests.
        reference_counts: dict[tuple[str, str], int] = {}
        for info in methods:
            for ref in info.substrates:
                key = (str(ref.get("kind")), str(ref.get("content_hash")))
                reference_counts[key] = reference_counts.get(key, 0) + 1
        recency = {info.path: self.last_used_at(info) for info in (*methods, *substrates)}
        methods_left = sorted(methods, key=lambda info: recency[info.path])
        substrates_left = {
            (info.kind, info.content_hash): info for info in substrates
        }
        removed: list = []

        def evictable_substrates() -> list[SubstrateArtifactInfo]:
            return [
                info
                for key, info in substrates_left.items()
                if reference_counts.get(key, 0) == 0
                and now - info.created_at > _ORPHAN_GRACE_SECONDS
            ]

        while total > max_bytes:
            candidates = sorted(
                [*methods_left, *evictable_substrates()],
                key=lambda info: recency[info.path],
            )
            victim = next(iter(candidates), None)
            if victim is None:
                return removed  # everything left is referenced or in grace
            if isinstance(victim, ArtifactInfo):
                methods_left.remove(victim)
                for ref in victim.substrates:
                    key = (str(ref.get("kind")), str(ref.get("content_hash")))
                    if reference_counts.get(key, 0) > 0:
                        reference_counts[key] -= 1
            else:
                substrates_left.pop((victim.kind, victim.content_hash), None)
            # A concurrently-removed victim still leaves the structures
            # consistent: its bytes are gone from disk either way.
            total -= victim.total_bytes
            if self._remove(Path(victim.path)):
                removed.append(victim)
        return removed

    def stats(self) -> dict:
        """A store summary, cached briefly (it scans every manifest).

        Writes through this store invalidate the cache immediately; only
        another process's concurrent writes can be missed, for at most
        ``_STATS_TTL_SECONDS``.
        """
        now = time.time()
        with self._lock:
            if self._stats_cache is not None and now < self._stats_cache[0]:
                return dict(self._stats_cache[1])
        infos = self.ls()
        substrates = self.ls_substrates()
        summary = {
            "root": str(self.root),
            "format_version": self.format_version,
            "artifacts": len(infos),
            "total_bytes": sum(info.total_bytes for info in infos),
            "methods": sorted({info.method for info in infos}),
            "substrates": len(substrates),
            "substrate_bytes": sum(info.total_bytes for info in substrates),
            "substrate_kinds": sorted({info.kind for info in substrates}),
        }
        with self._lock:
            self._stats_cache = (now + _STATS_TTL_SECONDS, summary)
        return dict(summary)

    # -- helpers -----------------------------------------------------------------
    @staticmethod
    def _prune_empty(method_dir: Path) -> None:
        try:
            next(method_dir.iterdir())
        except StopIteration:
            shutil.rmtree(method_dir, ignore_errors=True)
        except OSError:
            pass

    @staticmethod
    def _info_from_manifest(manifest: dict, path: Path) -> ArtifactInfo:
        files = manifest.get("files", {})
        return ArtifactInfo(
            method=str(manifest["method"]),
            fingerprint=str(manifest["fingerprint"]),
            format_version=int(manifest["format_version"]),
            state_version=int(manifest["state_version"]),
            expander_class=str(manifest.get("expander_class", "")),
            created_at=float(manifest.get("created_at", 0.0)),
            total_bytes=sum(int(meta["bytes"]) for meta in files.values()),
            num_files=len(files),
            path=str(path),
            library_versions=dict(manifest.get("library_versions", {})),
            substrates=tuple(manifest.get("substrates", []) or ()),
        )

    @staticmethod
    def _substrate_info_from_manifest(manifest: dict, path: Path) -> SubstrateArtifactInfo:
        files = manifest.get("files", {})
        return SubstrateArtifactInfo(
            kind=str(manifest["kind"]),
            content_hash=str(manifest["content_hash"]),
            fingerprint=str(manifest.get("fingerprint", "")),
            params_hash=str(manifest.get("params_hash", "")),
            format_version=int(manifest["format_version"]),
            created_at=float(manifest.get("created_at", 0.0)),
            total_bytes=sum(int(meta["bytes"]) for meta in files.values()),
            num_files=len(files),
            path=str(path),
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ArtifactStore(root={str(self.root)!r}, format_version={self.format_version})"
