"""Persistent, content-addressed store of fitted expander artifacts.

``Expander.fit`` dominates the cost of every method in this repo, and the
serving registry (PR 1) only amortises it *within* one process.  The
:class:`ArtifactStore` turns a fit into a build-once artifact on disk, keyed
by ``(method, dataset fingerprint)`` and stamped with a format version, so
that restarts, deploys, and sibling worker processes restore fitted state
instead of re-training it.

Layout (one directory per artifact; the format version is part of the path
so differently-versioned builds sharing a store coexist instead of evicting
each other's artifacts)::

    <root>/
      <method>/<fingerprint>.v<format_version>/
        manifest.json          # key, versions, checksums, sizes, created-at
        state/...              # whatever Expander.save_state wrote
      .tmp/                    # staging area for in-flight writes

Writes are atomic: state is staged under ``.tmp`` and moved into place with
one ``os.replace``-style rename, so a crashed writer never leaves a
half-written artifact where a reader could find it.  Restores verify the
manifest's format/state versions and every file checksum before any state is
deserialised; corrupt or version-mismatched artifacts raise a
:class:`~repro.exceptions.StoreError` subtype that consumers treat as a miss
(fall back to refit, then overwrite).
"""

from __future__ import annotations

import os
import platform
import shutil
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.exceptions import (
    ArtifactCorruptError,
    ArtifactNotFoundError,
    ArtifactVersionError,
    PersistenceError,
    StoreError,
)
from repro.store.serialization import read_json_state, sha256_file, write_json_state

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports store)
    from repro.core.base import Expander
    from repro.dataset.ultrawiki import UltraWikiDataset

#: bump when the store layout or manifest schema changes incompatibly.
FORMAT_VERSION = 1

_MANIFEST_NAME = "manifest.json"
_STATE_DIR = "state"

#: marker file (next to the manifest, outside the checksummed state tree)
#: whose mtime records the most recent restore — the signal the size-budget
#: GC uses to evict least-recently-restored artifacts first.
_RESTORED_MARKER = "restored_at"

#: staging directories younger than this are treated as in-flight saves and
#: left alone by ``gc`` — deleting them would race a concurrent writer.
_STALE_TMP_SECONDS = 3600.0

#: how long a computed ``stats()`` summary may be served from memory; the
#: summary requires a full manifest scan, and /stats gets polled.
_STATS_TTL_SECONDS = 5.0


@dataclass(frozen=True)
class ArtifactInfo:
    """One row of ``ArtifactStore.ls()`` — the manifest, summarised."""

    method: str
    fingerprint: str
    format_version: int
    state_version: int
    expander_class: str
    created_at: float
    total_bytes: int
    num_files: int
    path: str
    library_versions: dict = field(default_factory=dict)

    @property
    def age_seconds(self) -> float:
        return max(0.0, time.time() - self.created_at)


class ArtifactStore:
    """Saves and restores fitted expander state under one root directory."""

    def __init__(self, root: str | Path, format_version: int = FORMAT_VERSION):
        if format_version < 1:
            raise StoreError("format_version must be >= 1")
        self.root = Path(root)
        self.format_version = format_version
        self.root.mkdir(parents=True, exist_ok=True)
        self._tmp_root = self.root / ".tmp"
        # Serialises publishes/evictions within this process; cross-process
        # safety comes from staging + atomic rename.
        self._lock = threading.Lock()
        #: short-lived cache of :meth:`stats` (a full manifest scan) so that
        #: polling a monitoring endpoint does not hammer the filesystem.
        self._stats_cache: tuple[float, dict] | None = None

    # -- paths -------------------------------------------------------------------
    @staticmethod
    def _normalize(method: str) -> str:
        method = method.strip().lower()
        if not method or any(sep in method for sep in ("/", "\\", "..")):
            raise StoreError(f"invalid method name {method!r}")
        return method

    def artifact_dir(self, method: str, fingerprint: str) -> Path:
        """The directory an artifact for this store's key lives in.

        The format version is part of the path, not just the manifest, so
        mixed-version fleets sharing one store simply *miss* each other's
        artifacts (and coexist) instead of evicting and rewriting them back
        and forth on every cold start.
        """
        if not fingerprint or any(sep in fingerprint for sep in ("/", "\\", "..")):
            raise StoreError(f"invalid fingerprint {fingerprint!r}")
        return self.root / self._normalize(method) / f"{fingerprint}.v{self.format_version}"

    def contains(self, method: str, fingerprint: str) -> bool:
        """True when an artifact directory with a manifest exists (unverified)."""
        return (self.artifact_dir(method, fingerprint) / _MANIFEST_NAME).exists()

    # -- writing -----------------------------------------------------------------
    def save(self, method: str, fingerprint: str, expander: "Expander") -> ArtifactInfo:
        """Persist ``expander``'s fitted state, replacing any previous artifact.

        The expander writes into a staging directory; the manifest (with a
        checksum and size per file) is written last and the whole directory
        is renamed into place in one step.
        """
        method = self._normalize(method)
        target = self.artifact_dir(method, fingerprint)
        self._tmp_root.mkdir(parents=True, exist_ok=True)
        staging = self._tmp_root / f"{method}-{fingerprint}-{uuid.uuid4().hex}"
        state_dir = staging / _STATE_DIR
        state_dir.mkdir(parents=True)
        try:
            expander.save_state(state_dir)
            files = self._checksum_tree(state_dir)
            manifest = {
                "method": method,
                "fingerprint": fingerprint,
                "format_version": self.format_version,
                "state_version": type(expander).state_version,
                "expander_class": type(expander).__name__,
                "created_at": time.time(),
                "library_versions": {
                    "python": platform.python_version(),
                    "numpy": np.__version__,
                },
                "files": files,
            }
            write_json_state(staging / _MANIFEST_NAME, manifest)
            with self._lock:
                target.parent.mkdir(parents=True, exist_ok=True)
                if target.exists():
                    # Move the old artifact aside first so readers never see
                    # a partially-deleted directory at the published path.
                    graveyard = self._tmp_root / f"evicted-{uuid.uuid4().hex}"
                    os.replace(target, graveyard)
                    shutil.rmtree(graveyard, ignore_errors=True)
                os.replace(staging, target)
                self._stats_cache = None
        except StoreError:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        except PersistenceError:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        except OSError as exc:
            shutil.rmtree(staging, ignore_errors=True)
            raise StoreError(f"cannot write artifact {method}/{fingerprint}: {exc}") from exc
        return self._info_from_manifest(manifest, target)

    @staticmethod
    def _checksum_tree(state_dir: Path) -> dict[str, dict]:
        files: dict[str, dict] = {}
        for path in sorted(state_dir.rglob("*")):
            if path.is_file():
                relative = path.relative_to(state_dir).as_posix()
                files[relative] = {
                    "sha256": sha256_file(path),
                    "bytes": path.stat().st_size,
                }
        return files

    # -- reading -----------------------------------------------------------------
    def _read_manifest(self, method: str, fingerprint: str) -> tuple[dict, Path]:
        target = self.artifact_dir(method, fingerprint)
        manifest_path = target / _MANIFEST_NAME
        if not manifest_path.exists():
            raise ArtifactNotFoundError(
                f"no artifact for method={method!r} fingerprint={fingerprint!r}"
            )
        manifest = read_json_state(manifest_path)
        for key in ("method", "fingerprint", "format_version", "state_version", "files"):
            if key not in manifest:
                raise ArtifactCorruptError(f"manifest {manifest_path} lacks {key!r}")
        return manifest, target

    def verify(self, method: str, fingerprint: str) -> ArtifactInfo:
        """Check versions and every file checksum; raise a StoreError on failure."""
        manifest, target = self._read_manifest(method, fingerprint)
        if int(manifest["format_version"]) != self.format_version:
            raise ArtifactVersionError(
                f"artifact {method}/{fingerprint} has format_version "
                f"{manifest['format_version']}, store expects {self.format_version}"
            )
        state_dir = target / _STATE_DIR
        for relative, meta in manifest["files"].items():
            path = state_dir / relative
            try:
                if not path.is_file():
                    raise ArtifactCorruptError(
                        f"artifact {method}/{fingerprint} lost state file {relative!r}"
                    )
                if (
                    path.stat().st_size != int(meta["bytes"])
                    or sha256_file(path) != meta["sha256"]
                ):
                    raise ArtifactCorruptError(
                        f"artifact {method}/{fingerprint} checksum mismatch on {relative!r}"
                    )
            except OSError as exc:
                # A concurrent evict/replace can remove files mid-scan; the
                # caller must see a StoreError, never a raw filesystem error.
                raise ArtifactCorruptError(
                    f"artifact {method}/{fingerprint} became unreadable: {exc}"
                ) from exc
        return self._info_from_manifest(manifest, target)

    def restore(
        self,
        method: str,
        fingerprint: str,
        expander: "Expander",
        dataset: "UltraWikiDataset",
    ) -> ArtifactInfo:
        """Verify the artifact, then load its state into ``expander``.

        Any failure during deserialisation is reported as corruption so that
        callers uniformly fall back to refitting.
        """
        info = self.verify(method, fingerprint)
        if info.state_version != type(expander).state_version:
            raise ArtifactVersionError(
                f"artifact {method}/{fingerprint} has state_version "
                f"{info.state_version}, expander {type(expander).__name__} "
                f"expects {type(expander).state_version}"
            )
        if info.expander_class != type(expander).__name__:
            raise ArtifactVersionError(
                f"artifact {method}/{fingerprint} was saved by "
                f"{info.expander_class}, not {type(expander).__name__}"
            )
        state_dir = self.artifact_dir(method, fingerprint) / _STATE_DIR
        try:
            expander.load_state(state_dir, dataset)
        except StoreError:
            raise
        except PersistenceError as exc:
            # The state is intact but was fitted under an incompatible
            # expander configuration — a version-style mismatch, not
            # corruption, so consumers refit without evicting the artifact.
            raise ArtifactVersionError(
                f"artifact {method}/{fingerprint} does not match this "
                f"expander configuration: {exc}"
            ) from exc
        except Exception as exc:  # noqa: BLE001 - any load failure means corrupt state
            raise ArtifactCorruptError(
                f"artifact {method}/{fingerprint} failed to load: {exc}"
            ) from exc
        self._touch_restored(self.artifact_dir(method, fingerprint))
        return info

    @staticmethod
    def _touch_restored(artifact_dir: Path) -> None:
        """Record a restore by (re)stamping the marker's mtime.  Best-effort:
        a read-only store must not turn a successful restore into a failure."""
        marker = artifact_dir / _RESTORED_MARKER
        try:
            marker.touch(exist_ok=True)
            os.utime(marker)
        except OSError:
            pass

    @staticmethod
    def last_used_at(info: ArtifactInfo) -> float:
        """When the artifact was last restored (marker mtime), falling back
        to its creation time — the recency signal for budget eviction."""
        marker = Path(info.path) / _RESTORED_MARKER
        try:
            return max(info.created_at, marker.stat().st_mtime)
        except OSError:
            return info.created_at

    # -- management --------------------------------------------------------------
    def ls(self) -> list[ArtifactInfo]:
        """All artifacts in the store, newest first (unreadable ones skipped)."""
        infos: list[ArtifactInfo] = []
        if not self.root.exists():
            return infos
        for method_dir in sorted(self.root.iterdir()):
            if not method_dir.is_dir() or method_dir.name.startswith("."):
                continue
            for artifact_dir in sorted(method_dir.iterdir()):
                manifest_path = artifact_dir / _MANIFEST_NAME
                if not manifest_path.exists():
                    continue
                try:
                    manifest = read_json_state(manifest_path)
                    infos.append(self._info_from_manifest(manifest, artifact_dir))
                except (StoreError, KeyError, TypeError, ValueError):
                    continue
        infos.sort(key=lambda info: -info.created_at)
        return infos

    def evict(self, method: str, fingerprint: str) -> bool:
        """Remove this store version's artifact; returns True when it existed."""
        return self._remove(self.artifact_dir(method, fingerprint))

    def _remove(self, target: Path) -> bool:
        with self._lock:
            if not target.exists():
                return False
            self._tmp_root.mkdir(parents=True, exist_ok=True)
            graveyard = self._tmp_root / f"evicted-{uuid.uuid4().hex}"
            os.replace(target, graveyard)
            shutil.rmtree(graveyard, ignore_errors=True)
            self._prune_empty(target.parent)
            self._stats_cache = None
            return True

    def gc(
        self,
        keep_fingerprints: set[str] | None = None,
        max_age_seconds: float | None = None,
    ) -> list[ArtifactInfo]:
        """Remove stale artifacts and abandoned staging directories.

        An artifact is collected when its fingerprint is not in
        ``keep_fingerprints`` (if given) or it is older than
        ``max_age_seconds`` (if given); with neither filter only the staging
        area is cleaned.  Staging directories are only removed once they are
        old enough to be abandoned, never while a concurrent ``save`` may
        still be writing into them.  Returns the artifacts removed.
        """
        removed: list[ArtifactInfo] = []
        now = time.time()
        for info in self.ls():
            stale = False
            if keep_fingerprints is not None and info.fingerprint not in keep_fingerprints:
                stale = True
            if max_age_seconds is not None and now - info.created_at > max_age_seconds:
                stale = True
            # Remove via the listed path: ``ls`` surfaces artifacts of every
            # format version, including ones this store would not address.
            if stale and self._remove(Path(info.path)):
                removed.append(info)
        if self._tmp_root.exists():
            for leftover in self._tmp_root.iterdir():
                try:
                    abandoned = now - leftover.stat().st_mtime > _STALE_TMP_SECONDS
                except OSError:
                    continue  # a concurrent save just renamed it away
                if abandoned:
                    shutil.rmtree(leftover, ignore_errors=True)
        return removed

    def gc_to_budget(self, max_bytes: int) -> list[ArtifactInfo]:
        """Evict artifacts, least-recently-restored first, until the store's
        total size fits under ``max_bytes``.

        This is the policy a long-running serving process applies
        periodically (see ``ServiceConfig.store_max_bytes``): artifacts that
        keep getting restored by workers stay, cold ones age out.  Returns
        the artifacts removed, coldest first.
        """
        if max_bytes < 0:
            raise StoreError("max_bytes must be non-negative")
        infos = self.ls()
        total = sum(info.total_bytes for info in infos)
        if total <= max_bytes:
            return []
        by_recency = sorted(infos, key=self.last_used_at)
        removed: list[ArtifactInfo] = []
        for info in by_recency:
            if total <= max_bytes:
                break
            if self._remove(Path(info.path)):
                total -= info.total_bytes
                removed.append(info)
        return removed

    def stats(self) -> dict:
        """A store summary, cached briefly (it scans every manifest).

        Writes through this store invalidate the cache immediately; only
        another process's concurrent writes can be missed, for at most
        ``_STATS_TTL_SECONDS``.
        """
        now = time.time()
        with self._lock:
            if self._stats_cache is not None and now < self._stats_cache[0]:
                return dict(self._stats_cache[1])
        infos = self.ls()
        summary = {
            "root": str(self.root),
            "format_version": self.format_version,
            "artifacts": len(infos),
            "total_bytes": sum(info.total_bytes for info in infos),
            "methods": sorted({info.method for info in infos}),
        }
        with self._lock:
            self._stats_cache = (now + _STATS_TTL_SECONDS, summary)
        return dict(summary)

    # -- helpers -----------------------------------------------------------------
    @staticmethod
    def _prune_empty(method_dir: Path) -> None:
        try:
            next(method_dir.iterdir())
        except StopIteration:
            shutil.rmtree(method_dir, ignore_errors=True)
        except OSError:
            pass

    @staticmethod
    def _info_from_manifest(manifest: dict, path: Path) -> ArtifactInfo:
        files = manifest.get("files", {})
        return ArtifactInfo(
            method=str(manifest["method"]),
            fingerprint=str(manifest["fingerprint"]),
            format_version=int(manifest["format_version"]),
            state_version=int(manifest["state_version"]),
            expander_class=str(manifest.get("expander_class", "")),
            created_at=float(manifest.get("created_at", 0.0)),
            total_bytes=sum(int(meta["bytes"]) for meta in files.values()),
            num_files=len(files),
            path=str(path),
            library_versions=dict(manifest.get("library_versions", {})),
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ArtifactStore(root={str(self.root)!r}, format_version={self.format_version})"
