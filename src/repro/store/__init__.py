"""Persistent fitted-expander artifact store.

Fits are the dominant cost of every expansion method; this package makes
them build-once artifacts shared across restarts and worker processes:

* :class:`ArtifactStore` — content-addressed persistence keyed by
  ``(method, dataset fingerprint)`` with per-artifact JSON manifests
  (checksums, sizes, versions), atomic staged writes, and ``ls``/``gc``/
  ``evict`` management; shared substrates (:mod:`repro.substrate`) are
  stored once under ``.substrates/<kind>/<content hash>`` and referenced
  by method manifests, with reference-aware GC;
* :class:`FitLock` — cross-process fit leader election via an atomic lock
  file in the store directory, so N workers sharing the store pay each
  cold fit exactly once (waiters restore the leader's published artifact);
* :mod:`repro.store.serialization` — the pickle-free JSON + ``.npy``
  serialization layer, including mmap-friendly entity→vector maps.

Workflow::

    store = ArtifactStore("./artifacts")
    registry = ExpanderRegistry(dataset, store=store)   # restore-on-miss
    registry.get("retexpan")                            # fit once, write through
    # ... restart the process ...
    registry = ExpanderRegistry(dataset, store=store)
    registry.get("retexpan")                            # restored, no _fit
"""

from repro.store.artifact import (
    FORMAT_VERSION,
    ArtifactInfo,
    ArtifactStore,
    SubstrateArtifactInfo,
)
from repro.store.fitlock import DEFAULT_STALE_SECONDS, FitLock
from repro.store.serialization import (
    load_array,
    load_count_table,
    load_vector_map,
    read_json_state,
    save_array,
    save_count_table,
    save_vector_map,
    sha256_file,
    write_json_state,
)

__all__ = [
    "DEFAULT_STALE_SECONDS",
    "FORMAT_VERSION",
    "ArtifactInfo",
    "ArtifactStore",
    "FitLock",
    "SubstrateArtifactInfo",
    "save_array",
    "load_array",
    "save_vector_map",
    "load_vector_map",
    "save_count_table",
    "load_count_table",
    "read_json_state",
    "write_json_state",
    "sha256_file",
]
