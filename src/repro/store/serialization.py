"""Typed on-disk serialization helpers for fitted-expander state.

The artifact store never pickles: every piece of state is written as either
JSON (small structured metadata, token counts) or ``.npy`` / ``.npz`` numpy
payloads (embedding matrices).  Large matrices round-trip through
``np.save`` so they can be re-opened with ``np.load(mmap_mode="r")`` — a
warm restart then maps the fitted vectors instead of copying them, and N
worker processes restoring the same artifact share one page cache.

The central structure across the stack is the *vector map*: a
``dict[int, np.ndarray]`` from entity id to representation.  Uniformly
shaped maps (the overwhelmingly common case) are stored as an id vector plus
one stacked matrix; ragged maps fall back to a per-id ``.npz`` archive.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Mapping

import numpy as np

from repro.exceptions import ArtifactCorruptError

#: buffer size for streaming checksums (1 MiB).
_CHUNK_BYTES = 1 << 20


def sha256_file(path: str | Path) -> str:
    """Streaming SHA-256 of a file's content."""
    digest = hashlib.sha256()
    with Path(path).open("rb") as handle:
        while True:
            chunk = handle.read(_CHUNK_BYTES)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


def write_json_state(path: str | Path, payload: dict) -> None:
    """Write ``payload`` as JSON, preserving key insertion order.

    Counter-like payloads (n-gram counts) depend on insertion order for
    deterministic tie-breaking after a round-trip, so keys are *not* sorted.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, ensure_ascii=False, separators=(",", ":"))


def read_json_state(path: str | Path) -> dict:
    """Read a JSON state file, mapping parse failures to corruption errors."""
    path = Path(path)
    try:
        with path.open("r", encoding="utf-8") as handle:
            return json.load(handle)
    except FileNotFoundError as exc:
        raise ArtifactCorruptError(f"missing state file {path}") from exc
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ArtifactCorruptError(f"unreadable state file {path}: {exc}") from exc


def save_array(path: str | Path, array: np.ndarray) -> None:
    """Save one array as ``.npy`` (parents are created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.save(path, np.ascontiguousarray(array), allow_pickle=False)


def load_array(path: str | Path, mmap: bool = False) -> np.ndarray:
    """Load one ``.npy`` array, optionally memory-mapped read-only."""
    path = Path(path)
    try:
        return np.load(path, mmap_mode="r" if mmap else None, allow_pickle=False)
    except FileNotFoundError as exc:
        raise ArtifactCorruptError(f"missing array file {path}") from exc
    except (ValueError, OSError) as exc:
        raise ArtifactCorruptError(f"unreadable array file {path}: {exc}") from exc


def save_vector_map(
    directory: str | Path, name: str, mapping: Mapping[int, np.ndarray]
) -> None:
    """Persist an ``{entity_id: vector}`` map under ``directory`` as ``name``.

    Uniform maps become ``<name>.ids.npy`` + ``<name>.vectors.npy`` (the
    mmap-friendly layout); ragged maps fall back to ``<name>.ragged.npz``.
    An empty map writes an empty id vector so absence stays distinguishable
    from corruption.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    ids = sorted(mapping)
    shapes = {np.asarray(mapping[i]).shape for i in ids}
    if len(shapes) <= 1:
        save_array(directory / f"{name}.ids.npy", np.asarray(ids, dtype=np.int64))
        if ids:
            matrix = np.stack([np.asarray(mapping[i], dtype=np.float64) for i in ids])
        else:
            matrix = np.zeros((0, 0), dtype=np.float64)
        save_array(directory / f"{name}.vectors.npy", matrix)
    else:
        arrays = {str(i): np.asarray(mapping[i], dtype=np.float64) for i in ids}
        np.savez(directory / f"{name}.ragged.npz", **arrays)


def load_vector_map(
    directory: str | Path, name: str, mmap: bool = True
) -> dict[int, np.ndarray]:
    """Load a map written by :func:`save_vector_map`.

    With ``mmap`` (the default) the uniform layout keeps every vector a view
    into one read-only memory map; callers that mutate vectors must copy.
    """
    directory = Path(directory)
    ids_path = directory / f"{name}.ids.npy"
    ragged_path = directory / f"{name}.ragged.npz"
    if ids_path.exists():
        ids = load_array(ids_path)
        matrix = load_array(directory / f"{name}.vectors.npy", mmap=mmap)
        if matrix.shape[0] != ids.shape[0]:
            raise ArtifactCorruptError(
                f"vector map {name!r}: {ids.shape[0]} ids but {matrix.shape[0]} rows"
            )
        return {int(entity_id): matrix[row] for row, entity_id in enumerate(ids)}
    if ragged_path.exists():
        try:
            with np.load(ragged_path, allow_pickle=False) as archive:
                return {int(key): archive[key] for key in archive.files}
        except (ValueError, OSError) as exc:
            raise ArtifactCorruptError(f"unreadable vector map {ragged_path}: {exc}") from exc
    raise ArtifactCorruptError(f"vector map {name!r} not found under {directory}")


def save_count_table(path: str | Path, table: Mapping[str, Mapping[str, int]]) -> None:
    """Persist a nested string-count table (e.g. skip-gram features) as JSON."""
    write_json_state(
        Path(path), {outer: dict(inner) for outer, inner in table.items()}
    )


def load_count_table(path: str | Path) -> dict[str, dict[str, int]]:
    payload = read_json_state(path)
    if not isinstance(payload, dict):
        raise ArtifactCorruptError(f"count table {path} is not a JSON object")
    return {str(k): {str(t): int(c) for t, c in v.items()} for k, v in payload.items()}
