"""Cross-process fit leader election via atomic lock files.

When N serving workers share one artifact store and none of them holds the
artifact for a ``(method, dataset fingerprint)`` key yet, each would pay the
cold fit independently — the most expensive operation in the system,
multiplied by the fleet size.  :class:`FitLock` makes the fit single-payer:

* the lock is one file under ``<store root>/.fitlocks/``, created with
  ``O_CREAT | O_EXCL`` so exactly one process (the **leader**) wins the
  race, atomically, on any POSIX filesystem — including a directory shared
  between worker processes on one host;
* the leader records its pid/host and keeps the file's mtime fresh from a
  heartbeat thread while the fit runs; everyone else **waits** for the file
  to disappear and then restores the leader's published artifact from the
  store instead of fitting;
* a leader that dies mid-fit stops heartbeating, so its lock goes **stale**
  (mtime older than ``stale_after``) and the next waiter breaks it and takes
  over — a crash delays the fit, it never wedges the key forever.

The lock protects an optimisation, not correctness: every consumer treats
"could not acquire / wait timed out" as permission to fit locally, so a
misbehaving filesystem degrades to the pre-lock behaviour (duplicate fits),
never to an outage.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from pathlib import Path

from repro.exceptions import StoreError

#: subdirectory of the store root holding the lock files.
LOCK_DIR_NAME = ".fitlocks"

#: a lock whose mtime is older than this is considered abandoned by a dead
#: leader and may be broken by a waiter.
DEFAULT_STALE_SECONDS = 600.0


class FitLock:
    """An advisory single-payer lock for one ``(method, fingerprint)`` fit."""

    def __init__(
        self,
        root: str | Path,
        method: str,
        fingerprint: str,
        stale_after: float = DEFAULT_STALE_SECONDS,
        heartbeat_interval: float | None = None,
    ):
        method = method.strip().lower()
        if not method or any(sep in method for sep in ("/", "\\", "..")):
            raise StoreError(f"invalid method name {method!r}")
        if not fingerprint or any(sep in fingerprint for sep in ("/", "\\", "..")):
            raise StoreError(f"invalid fingerprint {fingerprint!r}")
        if stale_after <= 0:
            raise StoreError("stale_after must be positive")
        self.path = Path(root) / LOCK_DIR_NAME / f"{method}--{fingerprint}.lock"
        self.stale_after = stale_after
        #: heartbeats must land well inside the staleness window.
        self.heartbeat_interval = (
            heartbeat_interval
            if heartbeat_interval is not None
            else max(0.05, min(stale_after / 4.0, 15.0))
        )
        self._held = False
        self._stop_heartbeat = threading.Event()
        self._heartbeat_thread: threading.Thread | None = None

    # -- acquisition -------------------------------------------------------------
    def try_acquire(self) -> bool:
        """One non-blocking attempt to become the fit leader."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._break_if_stale()
        try:
            fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        except OSError as exc:
            raise StoreError(f"cannot create fit lock {self.path}: {exc}") from exc
        try:
            os.write(
                fd,
                json.dumps(
                    {
                        "pid": os.getpid(),
                        "host": socket.gethostname(),
                        "acquired_at": time.time(),
                    }
                ).encode("utf-8"),
            )
        finally:
            os.close(fd)
        self._held = True
        self._start_heartbeat()
        return True

    def release(self) -> None:
        """Drop leadership (idempotent; safe if the lock was stolen)."""
        self._stop_heartbeat.set()
        thread = self._heartbeat_thread
        if thread is not None:
            thread.join(timeout=2.0)
            self._heartbeat_thread = None
        if self._held:
            self._held = False
            try:
                self.path.unlink()
            except OSError:
                pass

    @property
    def held(self) -> bool:
        return self._held

    def __enter__(self) -> "FitLock":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    # -- waiting -----------------------------------------------------------------
    def wait(self, timeout: float, poll_interval: float = 0.05) -> bool:
        """Block until the lock is free (absent or gone stale).

        Returns True when the lock was observed free, False on timeout —
        callers treat False as "the leader is stuck; fit locally anyway".
        """
        deadline = time.monotonic() + max(0.0, timeout)
        while True:
            self._break_if_stale()
            if not self.path.exists():
                return True
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return False
            time.sleep(min(poll_interval, remaining))

    def holder(self) -> dict | None:
        """Best-effort contents of the lock file (pid/host/acquired_at)."""
        try:
            return json.loads(self.path.read_text("utf-8"))
        except (OSError, ValueError):
            return None

    # -- internals ---------------------------------------------------------------
    def _break_if_stale(self) -> None:
        """Remove an abandoned lock.  Several waiters may race here: unlink
        is idempotent and the follow-up ``O_EXCL`` create elects exactly one
        new leader, so the race is harmless."""
        try:
            age = time.time() - self.path.stat().st_mtime
        except OSError:
            return
        if age > self.stale_after:
            try:
                self.path.unlink()
            except OSError:
                pass

    def _start_heartbeat(self) -> None:
        self._stop_heartbeat.clear()
        self._heartbeat_thread = threading.Thread(
            target=self._heartbeat_loop, name="repro-fitlock-heartbeat", daemon=True
        )
        self._heartbeat_thread.start()

    def _heartbeat_loop(self) -> None:
        while not self._stop_heartbeat.wait(self.heartbeat_interval):
            try:
                os.utime(self.path)
            except OSError:
                # The lock was stolen (stale break) or the filesystem went
                # away; the fit continues — the lock is only an optimisation.
                return
