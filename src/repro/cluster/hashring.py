"""Consistent hashing for shard routing.

The gateway routes every request whose work is method-affine — expansions
and fit jobs — by the key ``"<method>|<dataset fingerprint>"`` so that one
worker owns each method's fitted expander and result cache.  A consistent
hash ring gives that assignment two properties a plain ``hash(key) % N``
cannot:

* **stability** — the mapping depends only on the worker ids and the key,
  never on process state, so every gateway (and every restart of the same
  gateway) routes identically; and
* **minimal movement** — removing a worker reassigns only the keys that
  worker owned; every other key keeps its shard, so failover does not dump
  every worker's hot registry/cache.

Each node is placed on the ring at ``virtual_nodes`` pseudo-random points
(derived from ``sha1(node + "#" + i)``) so load spreads evenly even with a
handful of workers.  :meth:`preference` returns *all* nodes in ring order
from the key's position — the failover order: the first entry is the owner,
the rest are the successors a gateway walks when the owner is down.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Sequence

from repro.exceptions import ServiceError

#: ring points per node; 64 keeps the load spread within a few percent for
#: small fleets while the ring stays tiny (N * 64 ints).
DEFAULT_VIRTUAL_NODES = 64


def _point(label: str) -> int:
    """A stable 64-bit ring position for ``label`` (first 8 sha1 bytes)."""
    digest = hashlib.sha1(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """An immutable consistent-hash ring over named nodes."""

    def __init__(self, nodes: Iterable[str], virtual_nodes: int = DEFAULT_VIRTUAL_NODES):
        self.virtual_nodes = int(virtual_nodes)
        if self.virtual_nodes < 1:
            raise ServiceError("virtual_nodes must be >= 1")
        self.nodes: tuple[str, ...] = tuple(dict.fromkeys(nodes))  # de-dup, keep order
        if not self.nodes:
            raise ServiceError("a hash ring needs at least one node")
        points: list[tuple[int, str]] = []
        for node in self.nodes:
            for replica in range(self.virtual_nodes):
                points.append((_point(f"{node}#{replica}"), node))
        points.sort()
        self._points = [point for point, _node in points]
        self._owners = [node for _point, node in points]

    def __len__(self) -> int:
        return len(self.nodes)

    def route(self, key: str) -> str:
        """The node that owns ``key``."""
        index = bisect.bisect_right(self._points, _point(key)) % len(self._points)
        return self._owners[index]

    def preference(self, key: str) -> list[str]:
        """All nodes in failover order for ``key``: owner first, then the
        distinct successors walking the ring clockwise."""
        start = bisect.bisect_right(self._points, _point(key)) % len(self._points)
        ordered: list[str] = []
        seen: set[str] = set()
        for offset in range(len(self._points)):
            node = self._owners[(start + offset) % len(self._points)]
            if node not in seen:
                seen.add(node)
                ordered.append(node)
                if len(ordered) == len(self.nodes):
                    break
        return ordered

    def without(self, node: str) -> "HashRing":
        """A new ring with ``node`` removed (used by tests to check minimal
        key movement; gateways keep the full ring and skip down nodes)."""
        remaining = [n for n in self.nodes if n != node]
        return HashRing(remaining, virtual_nodes=self.virtual_nodes)


def shard_key(method: str, fingerprint: str = "") -> str:
    """The routing key for method-affine work on one dataset."""
    return f"{method.strip().lower()}|{fingerprint}"
