"""Multi-worker sharded serving: a worker pool, a routing gateway, locks.

``repro.cluster`` scales the single-process serving stack horizontally:

* :class:`WorkerPool` spawns and babysits N ``repro serve`` subprocesses —
  health-checked on ``/v1/healthz``, restarted with staggered exponential
  backoff when they crash or stop answering;
* :class:`ClusterGateway` fronts the fleet with the same v1 wire protocol a
  single server speaks: method-affine traffic is consistent-hashed to one
  worker (hot registries/caches per shard), batches scatter-gather across
  shards with per-item error isolation, ``/v1/stats`` and ``/v1/healthz``
  aggregate the fleet, and a down worker fails over to the next ring node;
* :class:`HashRing` is the deterministic routing fabric both use;
* the cross-process fit lock lives with the store
  (:class:`repro.store.FitLock`) so N workers sharing one artifact store pay
  each cold fit exactly once.

Quickstart (programmatic; ``repro cluster serve`` is the CLI spelling)::

    from repro.cluster import ClusterGateway, WorkerPool, WorkerSpec

    specs = [WorkerSpec(f"worker-{i}", url, command) for i, (url, command) in ...]
    with WorkerPool(specs).start() as pool:
        gateway = ClusterGateway(
            [(e.worker_id, e.url) for e in pool.endpoints()],
            fingerprint=dataset.fingerprint(),
        ).start()
        # ExpansionClient.connect(gateway.url) works unchanged.
"""

from repro.cluster.gateway import WORKER_HEADER, ClusterGateway
from repro.cluster.hashring import HashRing, shard_key
from repro.cluster.workers import (
    WorkerEndpoint,
    WorkerPool,
    WorkerSpec,
    probe_health,
)
from repro.config import ClusterConfig

__all__ = [
    "ClusterConfig",
    "ClusterGateway",
    "HashRing",
    "WorkerEndpoint",
    "WorkerPool",
    "WorkerSpec",
    "WORKER_HEADER",
    "probe_health",
    "shard_key",
]
