"""Subprocess worker fleet: spawn, health-check, restart with backoff.

A :class:`WorkerPool` owns N serving processes (normally ``repro serve``
subprocesses, but any command that answers ``GET /v1/healthz`` works).  Each
worker is described by a :class:`WorkerSpec` — a stable id, the URL it will
listen on, and the argv to spawn it — and managed through its lifecycle:

* **start**: every spec is spawned (staggered so N workers don't slam the
  machine with N simultaneous dataset loads) and polled on ``/v1/healthz``
  until it answers;
* **monitor**: a background thread probes each worker every
  ``health_interval``; a worker whose process exited, or that failed
  ``unhealthy_threshold`` consecutive probes, is declared down, terminated
  if still running, and scheduled for restart;
* **restart**: respawns are delayed by exponential backoff (bounded by
  ``restart_backoff_max``) plus a per-worker stagger so a crash loop cannot
  hot-spin and simultaneous crashes don't restart in lockstep;
* **stop**: SIGTERM, bounded wait, then SIGKILL — ``repro serve`` installs a
  SIGTERM handler, so a healthy worker exits 0.

The pool never routes traffic itself; the gateway (:mod:`.gateway`) reads
:meth:`endpoints` / health and does its own passive failover, so the two
stay independently testable.
"""

from __future__ import annotations

import http.client
import subprocess
import threading
import time
from dataclasses import dataclass, field
from typing import IO, Sequence
from urllib.parse import urlsplit

from repro.exceptions import ServiceError

#: worker lifecycle states.
STARTING, HEALTHY, DOWN, STOPPED = "starting", "healthy", "down", "stopped"


def probe_health(url: str, timeout: float = 2.0, path: str = "/v1/healthz") -> bool:
    """One liveness probe: True iff ``GET url+path`` answers 200."""
    parts = urlsplit(url)
    connection = http.client.HTTPConnection(
        parts.hostname, parts.port or 80, timeout=timeout
    )
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        response.read()
        return response.status == 200
    except (OSError, http.client.HTTPException):
        return False
    finally:
        connection.close()


@dataclass(frozen=True)
class WorkerSpec:
    """One worker to manage: stable identity, serving URL, spawn command."""

    worker_id: str
    url: str
    command: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.worker_id:
            raise ServiceError("worker_id must be non-empty")
        if not self.command:
            raise ServiceError(f"worker {self.worker_id!r} needs a spawn command")


@dataclass(frozen=True)
class WorkerEndpoint:
    """A routing-facing snapshot of one worker."""

    worker_id: str
    url: str
    healthy: bool


@dataclass
class _Managed:
    """Mutable pool-internal state of one worker (guarded by the pool lock)."""

    spec: WorkerSpec
    index: int
    process: subprocess.Popen | None = None
    state: str = STARTING
    restarts: int = 0
    consecutive_failures: int = 0
    #: monotonic time before which the worker must not be respawned.
    next_restart_at: float = 0.0
    exit_codes: list[int] = field(default_factory=list)


class WorkerPool:
    """Spawns and babysits a fleet of serving subprocesses."""

    def __init__(
        self,
        specs: Sequence[WorkerSpec],
        health_interval: float = 0.5,
        health_timeout: float = 2.0,
        unhealthy_threshold: int = 3,
        restart_backoff: float = 0.5,
        restart_backoff_max: float = 30.0,
        restart_stagger: float = 0.25,
        spawn_stagger: float = 0.0,
        stdout: "IO | int | None" = subprocess.DEVNULL,
    ):
        if not specs:
            raise ServiceError("a worker pool needs at least one WorkerSpec")
        ids = [spec.worker_id for spec in specs]
        if len(set(ids)) != len(ids):
            raise ServiceError(f"duplicate worker ids: {sorted(ids)}")
        self.health_interval = health_interval
        self.health_timeout = health_timeout
        self.unhealthy_threshold = max(1, unhealthy_threshold)
        self.restart_backoff = restart_backoff
        self.restart_backoff_max = restart_backoff_max
        self.restart_stagger = restart_stagger
        self.spawn_stagger = spawn_stagger
        self._stdout = stdout
        self._lock = threading.Lock()
        self._workers = [
            _Managed(spec=spec, index=index) for index, spec in enumerate(specs)
        ]
        self._stop_event = threading.Event()
        self._monitor: threading.Thread | None = None
        self._started = False
        self._restarts_total = 0

    # -- lifecycle ---------------------------------------------------------------
    def start(self, wait_healthy: bool = True, timeout: float = 60.0) -> "WorkerPool":
        """Spawn every worker and (optionally) block until all are healthy."""
        with self._lock:
            if self._started:
                raise ServiceError("worker pool is already started")
            self._started = True
        for worker in self._workers:
            self._spawn(worker)
            if self.spawn_stagger > 0 and worker.index < len(self._workers) - 1:
                time.sleep(self.spawn_stagger)
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-cluster-monitor", daemon=True
        )
        self._monitor.start()
        if wait_healthy:
            self.wait_until_healthy(timeout=timeout)
        return self

    def wait_until_healthy(self, timeout: float = 60.0) -> None:
        """Block until every worker answers its health probe."""
        deadline = time.monotonic() + timeout
        pending = {worker.spec.worker_id for worker in self._workers}
        while pending:
            for worker in self._workers:
                if worker.spec.worker_id not in pending:
                    continue
                if probe_health(worker.spec.url, timeout=self.health_timeout):
                    with self._lock:
                        worker.state = HEALTHY
                        worker.consecutive_failures = 0
                    pending.discard(worker.spec.worker_id)
            if not pending:
                return
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"workers not healthy after {timeout:.0f}s: {sorted(pending)}"
                )
            time.sleep(min(0.05, self.health_interval))

    def stop(self, timeout: float = 10.0) -> None:
        """Terminate every worker (SIGTERM, bounded wait, SIGKILL) and join."""
        self._stop_event.set()
        monitor = self._monitor
        if monitor is not None:
            monitor.join(timeout=max(1.0, self.health_interval * 4))
            self._monitor = None
        with self._lock:
            workers = list(self._workers)
        for worker in workers:
            process = worker.process
            if process is not None and process.poll() is None:
                process.terminate()
        deadline = time.monotonic() + timeout
        for worker in workers:
            process = worker.process
            if process is None:
                continue
            remaining = max(0.1, deadline - time.monotonic())
            try:
                process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=5.0)
            with self._lock:
                worker.exit_codes.append(process.returncode)
                worker.state = STOPPED

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- routing-facing views ----------------------------------------------------
    def endpoints(self) -> list[WorkerEndpoint]:
        with self._lock:
            return [
                WorkerEndpoint(
                    worker_id=worker.spec.worker_id,
                    url=worker.spec.url,
                    healthy=worker.state == HEALTHY,
                )
                for worker in self._workers
            ]

    def healthy_count(self) -> int:
        with self._lock:
            return sum(1 for worker in self._workers if worker.state == HEALTHY)

    def stats(self) -> dict:
        with self._lock:
            return {
                "workers": {
                    worker.spec.worker_id: {
                        "url": worker.spec.url,
                        "state": worker.state,
                        "restarts": worker.restarts,
                        "pid": worker.process.pid if worker.process else None,
                        "exit_codes": list(worker.exit_codes),
                    }
                    for worker in self._workers
                },
                "restarts_total": self._restarts_total,
            }

    # -- internals ---------------------------------------------------------------
    def _spawn(self, worker: _Managed) -> None:
        worker.process = subprocess.Popen(
            list(worker.spec.command),
            stdout=self._stdout,
            stderr=subprocess.STDOUT if self._stdout not in (None,) else None,
        )
        with self._lock:
            worker.state = STARTING
            worker.consecutive_failures = 0

    def _monitor_loop(self) -> None:
        while not self._stop_event.wait(self.health_interval):
            for worker in self._workers:
                if self._stop_event.is_set():
                    return
                try:
                    self._check(worker)
                except Exception:  # noqa: BLE001 - monitoring must never die
                    continue

    def _check(self, worker: _Managed) -> None:
        now = time.monotonic()
        process = worker.process
        if worker.state == DOWN:
            if now >= worker.next_restart_at:
                self._restart(worker)
            return
        exited = process is None or process.poll() is not None
        if exited:
            if process is not None:
                with self._lock:
                    worker.exit_codes.append(process.returncode)
            self._mark_down(worker, now)
            return
        if probe_health(worker.spec.url, timeout=self.health_timeout):
            with self._lock:
                worker.state = HEALTHY
                worker.consecutive_failures = 0
            return
        with self._lock:
            worker.consecutive_failures += 1
            failing = worker.consecutive_failures >= self.unhealthy_threshold
        if failing:
            # Alive but unresponsive: recycle the process like a crash.
            if process.poll() is None:
                process.terminate()
                try:
                    process.wait(timeout=self.health_timeout)
                except subprocess.TimeoutExpired:
                    process.kill()
            self._mark_down(worker, time.monotonic())

    def _mark_down(self, worker: _Managed, now: float) -> None:
        with self._lock:
            worker.state = DOWN
            worker.restarts += 1
            self._restarts_total += 1
            backoff = min(
                self.restart_backoff_max,
                self.restart_backoff * (2 ** (worker.restarts - 1)),
            )
            # Stagger per worker index so simultaneous crashes (e.g. a shared
            # dependency hiccup) do not respawn the whole fleet in lockstep.
            worker.next_restart_at = now + backoff + worker.index * self.restart_stagger

    def _restart(self, worker: _Managed) -> None:
        self._spawn(worker)
