"""The cluster routing gateway: one v1 endpoint in front of N workers.

The gateway speaks the exact same v1 wire protocol as a single ``repro
serve`` process, so :class:`~repro.client.ExpansionClient` (and any raw HTTP
caller) points at it unchanged.  Behind that surface it does four jobs:

* **shard routing** — method-affine calls (``POST /v1/expand``, ``POST
  /v1/fits``) are consistent-hashed by ``(method, dataset fingerprint)`` to
  one worker, so each worker's expander registry, result cache, and
  micro-batcher stay hot for its shard instead of every worker paying every
  fit; responses are proxied byte-for-byte (the worker's envelope,
  ``request_id`` and all), which is what makes gateway answers identical to
  single-process answers;
* **scatter-gather** — ``POST /v1/expand/batch`` splits the items by shard,
  fans the sub-batches out to their owners concurrently, and reassembles the
  per-item responses in request order with per-item error isolation (a dead
  shard fails only its own items); ``GET /v1/stats`` and ``GET /v1/healthz``
  aggregate every worker plus the gateway's own counters;
* **failover** — a worker that fails at the transport level is sidelined
  for ``failover_cooldown_seconds`` and the request is retried on the next
  node of the consistent-hash ring, so killing a worker mid-traffic costs a
  shard move, not an outage (expansions are idempotent; a replayed fit is at
  worst a 409 conflict);
* **job affinity** — fit jobs live on the worker that owns the method, so
  ``GET``/``DELETE /v1/fits/<id>`` asks the owner first and then the other
  workers (the ring may have shifted since the job was created).
"""

from __future__ import annotations

import http.client
import json
import logging
import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from html import escape
from typing import Mapping, Sequence
from urllib.parse import parse_qs, urlsplit

from repro.api.envelope import (
    REQUEST_ID_HEADER,
    error_envelope,
    is_valid_request_id,
    new_request_id,
    success_envelope,
)
from repro.api.errors import (
    CODE_INVALID_REQUEST,
    CODE_JOB_NOT_FOUND,
    CODE_NOT_FOUND,
    CODE_UNAVAILABLE,
    error_payload,
    route_not_found_payload,
)
from repro.api.v1 import MAX_BATCH_REQUESTS, parse_trace_query
from repro.cluster.hashring import HashRing, shard_key
from repro.config import ClusterConfig
from repro.exceptions import ReproError, ServiceError
from repro.gate import (
    API_KEY_HEADER,
    TENANT_HEADER,
    Gate,
    QuotaSpec,
    TenantDirectory,
    operation_for,
    retry_after_header,
)
from repro.obs import (
    PROMETHEUS_CONTENT_TYPE,
    TRACE_ID_HEADER,
    TRACE_SPANS_HEADER,
    TRACEPARENT_HEADER,
    MetricsRegistry,
    Trace,
    TraceCollector,
    UsageMeter,
    activate,
    build_exporter,
    current_context,
    current_request_id,
    current_tenant,
    current_trace,
    format_traceparent,
    merge_bucket_lists,
    new_span_id,
    propagation_scope,
    request_scope,
    span,
    tenant_scope,
)
from repro.serve.cache import ResultCache
from repro.serve.protocol import ExpandRequest

#: header naming the worker that actually served a proxied response.
WORKER_HEADER = "X-Repro-Worker"

#: header stamped on responses the gateway served from its own result
#: cache (no worker round trip; the value names the cache tier).
CACHE_HEADER = "X-Repro-Cache"

#: request body size guard, mirroring the worker front-end.
MAX_BODY_BYTES = 1 << 20

#: structured gateway access-log destination (one JSON document per line),
#: enabled with ``ClusterConfig.gateway_access_log``.
gateway_access_logger = logging.getLogger("repro.cluster.access")

#: routes the front-door gate never charges: liveness probes (a throttled
#: fleet must not look dead) and metrics scrapes (observability is free).
_GATE_EXEMPT = {("GET", "/v1/healthz"), ("GET", "/v1/metrics")}


@dataclass
class _Reply:
    """One gateway response: status, encoded body, extra headers."""

    status: int
    body: bytes
    headers: dict[str, str]
    content_type: str = "application/json"

    @classmethod
    def envelope(cls, status: int, envelope: dict, **headers: str) -> "_Reply":
        return cls(
            status=status,
            body=json.dumps(envelope).encode("utf-8"),
            headers=dict(headers),
        )


def _unavailable_payload(message: str) -> dict:
    return {
        "error": "ServiceUnavailableError",
        "code": CODE_UNAVAILABLE,
        "message": message,
        "details": {},
        "retryable": True,
    }


def _invalid_payload(message: str) -> dict:
    return {
        "error": "ServiceError",
        "code": CODE_INVALID_REQUEST,
        "message": message,
        "details": {},
        "retryable": False,
    }


class _BackendError(Exception):
    """The request never reached the worker (connect failure, refused,
    stale socket on a fresh connection).  Safe to fail over for any verb."""


class _BackendUnsafe(_BackendError):
    """The worker *received* the request but no usable response arrived
    (timeout mid-serve, connection lost after the status line).  Failing
    over would replay work the worker may already be doing — only
    idempotent, cheap GETs are retried on another node."""


class ClusterGateway:
    """Routes the v1 protocol across a fleet of serving workers."""

    def __init__(
        self,
        backends: Sequence[tuple[str, str]],
        config: ClusterConfig | None = None,
        fingerprint: str = "",
        host: str | None = None,
        port: int | None = None,
    ):
        """``backends`` is a sequence of ``(worker_id, url)`` pairs; they are
        the complete, stable fleet (a restarted worker keeps its id and URL).
        ``fingerprint`` pins the dataset half of the routing key; when empty
        it is learned from the first reachable worker at :meth:`start`."""
        self.config = config or ClusterConfig()
        self.config.validate()
        if not backends:
            raise ServiceError("the gateway needs at least one backend worker")
        self._urls: dict[str, tuple[str, int]] = {}
        for worker_id, url in backends:
            parts = urlsplit(url)
            if parts.hostname is None or parts.port is None:
                raise ServiceError(f"backend {worker_id!r} needs host:port, got {url!r}")
            self._urls[worker_id] = (parts.hostname, parts.port)
        self._backend_urls = {worker_id: url for worker_id, url in backends}
        self.fingerprint = fingerprint
        self._ring = HashRing(list(self._urls), virtual_nodes=self.config.virtual_nodes)
        self._lock = threading.Lock()
        #: worker_id -> monotonic time until which it is sidelined.
        self._down_until: dict[str, float] = {}
        #: gateway-owned telemetry; the fingerprint const label is stamped
        #: once it is learned (render_prometheus reads const_labels live).
        self.metrics = MetricsRegistry()
        if fingerprint:
            self.metrics.const_labels["fingerprint"] = fingerprint
        self._requests = self.metrics.counter(
            "repro_gateway_requests_total", "Requests accepted by the gateway."
        )
        self._proxied = self.metrics.counter(
            "repro_gateway_proxied_total", "Requests proxied to a worker."
        )
        self._failovers = self.metrics.counter(
            "repro_gateway_failovers_total", "Failover hops to another worker."
        )
        self._backend_errors = self.metrics.counter(
            "repro_gateway_backend_errors_total", "Worker transport failures."
        )
        self._no_backend = self.metrics.counter(
            "repro_gateway_no_backend_total",
            "Requests that exhausted every worker.",
        )
        self._routed = self.metrics.counter(
            "repro_gateway_routed_total", "Proxied requests per worker."
        )
        self._sidelined = self.metrics.gauge(
            "repro_gateway_sidelined_workers", "Workers currently sidelined."
        )
        for worker_id in self._urls:
            # materialize one series per worker so stats()/scrapes list the
            # whole fleet from the first render, not just workers hit so far.
            self._routed.inc(0, worker=worker_id)
        #: keep-alive connections to each worker (the gateway->worker hop
        #: carries all traffic; re-handshaking per proxy call would dominate).
        self._conn_pool: dict[str, list[http.client.HTTPConnection]] = {
            worker_id: [] for worker_id in self._urls
        }
        # The cluster's front door: auth + quotas enforced once, here, so
        # workers behind the gateway stay open and merely trust the
        # forwarded tenant header for metric attribution.
        self.gate: Gate | None = None
        if self.config.keyfile is not None or self.config.default_quota is not None:
            directory = None
            if self.config.keyfile is not None:
                directory = TenantDirectory(
                    self.config.keyfile,
                    reload_interval_seconds=self.config.keyfile_reload_seconds,
                )
            self.gate = Gate(
                directory=directory,
                default_quota=(
                    None
                    if self.config.default_quota is None
                    else QuotaSpec.parse(self.config.default_quota)
                ),
                metrics=self.metrics,
            )
        # Gateway-side result cache: repeated identical expand requests are
        # answered here without a worker round trip.  Same discipline as the
        # worker ResultCache (LRU + TTL, canonicalized request key) with two
        # extra key components — the resolved tenant and the dataset
        # fingerprint — so hits never cross tenants or outlive a dataset
        # swap.  Hits are still billed (at lookup cost) via the gateway's
        # own usage meter.
        self.cache: ResultCache | None = None
        self.usage: UsageMeter | None = None
        if self.config.gateway_cache_capacity > 0:
            self.cache = ResultCache(
                capacity=self.config.gateway_cache_capacity,
                ttl_seconds=self.config.gateway_cache_ttl_seconds,
                metrics=self.metrics,
                metric_prefix="repro_gateway_cache",
            )
            self.usage = UsageMeter()
        # The gateway keeps its own searchable ring of *joined* traces (its
        # span tree plus every worker fragment grafted under the proxy
        # hops), configured off the embedded per-worker service config so
        # one knob traces the whole tier.
        service_cfg = self.config.service
        self.traces: TraceCollector | None = None
        if service_cfg.trace_sample_rate is not None:
            self.traces = TraceCollector(
                capacity=service_cfg.trace_buffer_size,
                sample_rate=service_cfg.trace_sample_rate,
                slow_ms=service_cfg.slow_query_ms,
                rng=(
                    random.Random(service_cfg.trace_sample_seed)
                    if service_cfg.trace_sample_seed is not None
                    else None
                ),
            )
        self._conn_pool_size = 8
        self._scatter_pool = ThreadPoolExecutor(
            max_workers=max(4, 2 * len(self._urls)),
            thread_name_prefix="repro-gateway",
        )
        self.exporter = build_exporter(
            self.metrics,
            self.config.gateway_exporter,
            self.config.gateway_exporter_target,
            interval_seconds=self.config.gateway_exporter_interval_seconds,
        )
        if self.exporter is not None:
            self.exporter.start()
        self._httpd = ThreadingHTTPServer(
            (
                host if host is not None else self.config.gateway_host,
                port if port is not None else self.config.gateway_port,
            ),
            _GatewayHandler,
        )
        self._httpd.daemon_threads = True
        self._httpd.gateway = self  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    # -- lifecycle ---------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return (str(host), int(port))

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ClusterGateway":
        """Serve on a daemon thread (tests / embedded use)."""
        if not self.fingerprint:
            self._resolve_fingerprint()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-gateway", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (CLI use)."""
        if not self.fingerprint:
            self._resolve_fingerprint()
        self._httpd.serve_forever()

    def shutdown(self) -> None:
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()
        self._scatter_pool.shutdown(wait=False)
        for worker_id in list(self._conn_pool):
            self._flush_connections(worker_id)
        if self.exporter is not None:
            # Last: the drain flush ships the shutdown's own counter bumps.
            self.exporter.shutdown()

    def __enter__(self) -> "ClusterGateway":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def _resolve_fingerprint(self) -> None:
        """Learn the dataset fingerprint from the first reachable worker so
        the routing key matches what the fleet is actually serving.  The key
        must never change once traffic flows, so this runs exactly once,
        before the listening thread starts."""
        for worker_id in self._ring.nodes:
            try:
                status, raw, _headers = self._forward(worker_id, "GET", "/v1/stats", None)
            except _BackendError:
                continue
            if status != 200:
                continue
            try:
                data = json.loads(raw.decode("utf-8")).get("data") or {}
                fingerprint = data.get("registry", {}).get("dataset_fingerprint", "")
            except (ValueError, AttributeError):
                continue
            if fingerprint:
                self.fingerprint = str(fingerprint)
                self.metrics.const_labels["fingerprint"] = self.fingerprint
                return

    # -- dispatch ----------------------------------------------------------------
    def handle(
        self,
        verb: str,
        path: str,
        body: bytes | None,
        query: str = "",
        api_key: str | None = None,
    ) -> _Reply:
        """Serve one gateway request; never raises."""
        self._requests.inc()
        tenant: str | None = None
        if self.gate is not None and (verb, path) not in _GATE_EXEMPT:
            try:
                tenant = self.gate.check(api_key, operation_for(verb, path))
            except ReproError as exc:
                status, payload = error_payload(exc)
                return self._error_reply(status, payload)
        # Head-sampling for the joined gateway trace; trace-search and
        # exempt observability routes never trace themselves.
        trace: Trace | None = None
        if (
            self.traces is not None
            and (verb, path) not in _GATE_EXEMPT
            and not path.startswith("/v1/traces")
            and path != "/v1/dashboard"
        ):
            sampled = self.traces.sample()
            if sampled or self.traces.slow_ms is not None:
                trace = Trace(request_id=current_request_id())
                trace.sampled = sampled
        started = time.perf_counter()
        try:
            with tenant_scope(tenant):
                if trace is not None:
                    with activate(trace), span("gateway", route=path, verb=verb):
                        reply = self._route(verb, path, body, query)
                else:
                    reply = self._route(verb, path, body, query)
        except Exception as exc:  # noqa: BLE001 - rendered as a 500 envelope
            self._finish_trace(
                trace,
                (time.perf_counter() - started) * 1000.0,
                tenant,
                error=type(exc).__name__,
            )
            return self._error_reply(
                500,
                {
                    "error": type(exc).__name__,
                    "code": "internal",
                    "message": f"gateway failure: {exc}",
                    "details": {},
                    "retryable": True,
                },
            )
        self._finish_trace(
            trace,
            (time.perf_counter() - started) * 1000.0,
            tenant,
            error=f"http_{reply.status}" if reply.status >= 500 else None,
        )
        if trace is not None:
            reply.headers[TRACE_ID_HEADER] = trace.trace_id
        return reply

    def _finish_trace(
        self,
        trace: Trace | None,
        duration_ms: float,
        tenant: str | None,
        error: str | None = None,
    ) -> None:
        """Offer the joined request trace to the gateway's collector."""
        if trace is None or self.traces is None:
            return
        self.traces.offer(
            trace,
            duration_ms=duration_ms,
            method=trace.annotations().get("method"),
            tenant=tenant,
            error=error,
            sampled=trace.sampled,
        )

    def _route(
        self, verb: str, path: str, body: bytes | None, query: str = ""
    ) -> _Reply:
        if (verb, path) == ("GET", "/v1/healthz"):
            return self._aggregate_health()
        if (verb, path) == ("GET", "/v1/stats"):
            return self._aggregate_stats()
        if (verb, path) == ("GET", "/v1/metrics"):
            return _Reply(
                status=200,
                body=self.metrics.render_prometheus().encode("utf-8"),
                headers={},
                content_type=PROMETHEUS_CONTENT_TYPE,
            )
        if (verb, path) == ("GET", "/v1/dashboard"):
            wants_html = parse_qs(query).get("format", [""])[-1] == "html"
            return self._dashboard(html=wants_html)
        if (verb, path) == ("GET", "/v1/methods"):
            return self._forward_any(verb, path)
        if (verb, path) == ("POST", "/v1/expand"):
            return self._route_by_method(verb, path, body)
        if (verb, path) == ("POST", "/v1/fits"):
            return self._route_by_method(verb, path, body)
        if (verb, path) == ("POST", "/v1/expand/batch"):
            return self._scatter_batch(body)
        if (verb, path) == ("GET", "/v1/fits"):
            return self._merged_fit_jobs()
        if verb in ("GET", "DELETE") and path.startswith("/v1/fits/"):
            job_id = path[len("/v1/fits/"):]
            if job_id and "/" not in job_id:
                return self._find_fit_job(verb, path)
        if (verb, path) == ("GET", "/v1/traces"):
            return self._list_traces(query)
        if verb == "GET" and path.startswith("/v1/traces/"):
            trace_id = path[len("/v1/traces/"):]
            if trace_id and "/" not in trace_id:
                return self._find_trace(trace_id)
        return self._error_reply(404, route_not_found_payload(path))

    # -- proxying ----------------------------------------------------------------
    def _forward(
        self, worker_id: str, verb: str, path: str, body: bytes | None
    ) -> tuple[int, bytes, dict[str, str]]:
        """One proxy attempt to one worker over a pooled keep-alive
        connection; raises :class:`_BackendError` when the worker never got
        the request (sidelining it) or :class:`_BackendUnsafe` when it did
        but no usable response arrived."""
        headers = {"Accept": "application/json"}
        # Propagate the inbound request id so the worker's access log and
        # envelope carry the same correlation handle as the gateway's.
        request_id = current_request_id()
        if request_id:
            headers[REQUEST_ID_HEADER] = request_id
        # Forward the tenant the gateway's gate resolved, so worker-side
        # per-tenant metrics attribute fleet traffic correctly.
        tenant = current_tenant()
        if tenant:
            headers[TENANT_HEADER] = tenant
        # W3C-style trace continuation: the worker continues our trace_id
        # and returns its span fragment for grafting.  current_context()
        # also resolves the propagation-scope contextvar, so scatter legs
        # running on pool threads still carry the handler's context.
        context = current_context()
        if context is not None and context.sampled:
            headers[TRACEPARENT_HEADER] = format_traceparent(context)
        if body is not None:
            headers["Content-Type"] = "application/json"
        sent_at = time.perf_counter()
        for replay in (False, True):
            if replay:
                connection, reused = self._fresh_worker_connection(worker_id), False
            else:
                connection, reused = self._conn_checkout(worker_id)
            try:
                connection.request(verb, path, body=body, headers=headers)
                response = connection.getresponse()
            except TimeoutError as exc:
                # Alive but slow (e.g. an in-request cold fit): not evidence
                # the worker is down, and the request may be mid-serve.
                connection.close()
                raise _BackendUnsafe(
                    f"worker {worker_id!r} timed out serving {verb} {path}: {exc}"
                ) from exc
            except (OSError, http.client.HTTPException) as exc:
                connection.close()
                if reused:
                    # a pooled socket the worker closed while idle; the
                    # request never reached it — retry on a fresh connection
                    # to the *same* worker before declaring it down.
                    continue
                self._mark_down(worker_id)
                raise _BackendError(
                    f"worker {worker_id!r} unreachable: {exc}"
                ) from exc
            # Status line received: the worker processed the request.  A
            # failure from here on must not look failover-safe.
            try:
                raw = response.read()
            except (OSError, http.client.HTTPException) as exc:
                connection.close()
                self._mark_down(worker_id)
                raise _BackendUnsafe(
                    f"worker {worker_id!r} dropped mid-response: {exc}"
                ) from exc
            passthrough: dict[str, str] = {}
            request_id = response.getheader(REQUEST_ID_HEADER)
            if request_id:
                passthrough[REQUEST_ID_HEADER] = request_id
            # a worker shedding load answers 503 + Retry-After; the hint
            # must survive the proxy hop for client backoff to honor it.
            retry_after = response.getheader("Retry-After")
            if retry_after:
                passthrough["Retry-After"] = retry_after
            self._record_hop(
                context,
                worker_id,
                path,
                sent_at,
                response.getheader(TRACE_SPANS_HEADER),
            )
            if response.will_close:
                connection.close()
            else:
                self._conn_checkin(worker_id, connection)
            return response.status, raw, passthrough
        raise _BackendError(f"worker {worker_id!r} unreachable")  # pragma: no cover

    @staticmethod
    def _record_hop(
        context,
        worker_id: str,
        path: str,
        sent_at: float,
        fragment: str | None,
    ) -> None:
        """Stamp one proxy span onto the routed trace and graft the worker's
        returned span fragment under it.  Thread-safe: scatter legs call
        this from pool threads, so only the locked Trace mutators are used
        (never the single-threaded span stack)."""
        if context is None or context.trace is None:
            return
        trace = context.trace
        now = time.perf_counter()
        start_ms = (sent_at - trace.t0) * 1000.0
        proxy_id = new_span_id()
        trace.add_span(
            "proxy",
            start_ms,
            (now - sent_at) * 1000.0,
            parent="gateway",
            parent_id=context.span_id,
            span_id=proxy_id,
            worker=worker_id,
            path=path,
        )
        if not fragment:
            return
        try:
            spans = json.loads(fragment).get("spans")
        except (ValueError, AttributeError):
            return
        if isinstance(spans, list):
            trace.graft_remote(
                spans, base_ms=start_ms, parent="proxy", parent_id=proxy_id
            )

    # -- gateway->worker connection pool -----------------------------------------
    def _fresh_worker_connection(self, worker_id: str) -> http.client.HTTPConnection:
        host, port = self._urls[worker_id]
        return http.client.HTTPConnection(
            host, port, timeout=self.config.proxy_timeout_seconds
        )

    def _conn_checkout(
        self, worker_id: str
    ) -> tuple[http.client.HTTPConnection, bool]:
        with self._lock:
            idle = self._conn_pool[worker_id]
            if idle:
                return idle.pop(), True
        return self._fresh_worker_connection(worker_id), False

    def _conn_checkin(
        self, worker_id: str, connection: http.client.HTTPConnection
    ) -> None:
        with self._lock:
            idle = self._conn_pool[worker_id]
            if len(idle) < self._conn_pool_size:
                idle.append(connection)
                return
        connection.close()

    def _flush_connections(self, worker_id: str) -> None:
        with self._lock:
            idle, self._conn_pool[worker_id] = self._conn_pool[worker_id], []
        for connection in idle:
            connection.close()

    def _mark_down(self, worker_id: str) -> None:
        # pooled sockets to a worker that just failed are almost certainly
        # dead too; drop them so recovery probes start clean.
        self._flush_connections(worker_id)
        self._backend_errors.inc()
        with self._lock:
            self._down_until[worker_id] = (
                time.monotonic() + self.config.failover_cooldown_seconds
            )
            self._refresh_sidelined_locked()

    def _mark_up(self, worker_id: str) -> None:
        with self._lock:
            self._down_until.pop(worker_id, None)
            self._refresh_sidelined_locked()

    def _refresh_sidelined_locked(self) -> None:
        now = time.monotonic()
        self._sidelined.set(
            sum(1 for until in self._down_until.values() if now < until)
        )

    def _down_snapshot(self) -> dict[str, float]:
        """One locked copy of the sideline table.  Callers that need several
        workers' states read this snapshot instead of taking the lock per
        worker — per-worker reads could interleave with a concurrent
        ``_mark_down`` and order the same preference list inconsistently."""
        with self._lock:
            return dict(self._down_until)

    def _is_down(self, worker_id: str) -> bool:
        with self._lock:
            until = self._down_until.get(worker_id)
            return until is not None and time.monotonic() < until

    def _attempt_order(self, key: str) -> list[str]:
        """Failover order for ``key``: ring preference with sidelined workers
        moved to the back (not dropped — if the whole fleet looks down, the
        request should still try everyone once rather than fail blind)."""
        preference = self._ring.preference(key)
        down_until = self._down_snapshot()
        now = time.monotonic()

        def sidelined(worker_id: str) -> bool:
            return down_until.get(worker_id, 0.0) > now

        up = [worker_id for worker_id in preference if not sidelined(worker_id)]
        down = [worker_id for worker_id in preference if sidelined(worker_id)]
        return up + down

    def owner(self, method: str) -> str:
        """The worker that owns ``method`` while the fleet is healthy (the
        routing invariant tests pin)."""
        return self._ring.route(shard_key(method, self.fingerprint))

    def _proxy_with_failover(
        self, key: str, verb: str, path: str, body: bytes | None
    ) -> _Reply:
        last_error: _BackendError | None = None
        for worker_id in self._attempt_order(key):
            try:
                status, raw, headers = self._forward(worker_id, verb, path, body)
            except _BackendUnsafe as exc:
                if verb != "GET":
                    # The worker may be serving this very request (e.g. a
                    # slow in-request fit): replaying it on another node
                    # would duplicate the work, so surface a retryable
                    # error and let the *client's* policy decide.
                    return self._error_reply(503, _unavailable_payload(str(exc)))
                last_error = exc
                self._failovers.inc()
                continue
            except _BackendError as exc:
                last_error = exc
                self._failovers.inc()
                continue
            self._mark_up(worker_id)
            self._proxied.inc()
            self._routed.inc(worker=worker_id)
            headers[WORKER_HEADER] = worker_id
            return _Reply(status=status, body=raw, headers=headers)
        self._no_backend.inc()
        return self._error_reply(
            503,
            _unavailable_payload(
                f"no worker available for this request ({last_error})"
            ),
        )

    def _route_by_method(self, verb: str, path: str, body: bytes | None) -> _Reply:
        payload = self._parse_json(body)
        if not isinstance(payload, Mapping):
            return self._error_reply(
                400, _invalid_payload("request body must be a JSON object")
            )
        method = payload.get("method")
        if not isinstance(method, str) or not method.strip():
            return self._error_reply(
                400, _invalid_payload("request must name a method")
            )
        trace = current_trace()
        if trace is not None:
            # the collector's method filter keys off this annotation.
            trace.annotate(method=method.strip().lower())
        cache_key = None
        if self.cache is not None and path == "/v1/expand":
            cache_key = self._expand_cache_key(payload)
        if cache_key is not None:
            lookup_started = time.perf_counter()
            hit = self.cache.get(cache_key)
            if hit is not None:
                # A hit costs a dict copy, not a forward pass: bill the
                # lookup wall-time, flagged as cached, so usage reports
                # stay complete without inflating compute attribution.
                if self.usage is not None:
                    self.usage.charge_expand(
                        current_tenant(),
                        time.perf_counter() - lookup_started,
                        method=method,
                        cached=True,
                    )
                data = dict(hit)
                data["cached"] = True
                return _Reply.envelope(
                    200,
                    success_envelope(current_request_id() or new_request_id(), data),
                    **{CACHE_HEADER: "gateway"},
                )
        key = shard_key(method, self.fingerprint)
        reply = self._proxy_with_failover(key, verb, path, body)
        if cache_key is not None and reply.status == 200:
            data = self._parse_envelope_data((reply.status, reply.body))
            if data is not None:
                self.cache.put(cache_key, data)
        return reply

    def _expand_cache_key(self, payload: Mapping) -> tuple | None:
        """The gateway cache key for one expand payload, or ``None`` when
        the request must not be cached (cache opt-out, timings requested,
        or a body the worker would reject anyway).

        The key reuses :meth:`ExpandRequest.cache_key` canonicalization
        (normalized method, sorted seeds, retrieval knobs) and adds every
        remaining tenant-visible response shaper — the gateway caches the
        serialized response, so pagination and name resolution must key
        too — plus the resolved tenant and the dataset fingerprint, which
        scope hits to one tenant and one dataset generation."""
        try:
            request = ExpandRequest.from_dict(payload)
            request.validate()
        except ServiceError:
            return None  # let the owning worker produce the error envelope
        options = request.options
        if not options.use_cache or options.include_timings:
            return None
        # top_k=None means "the worker's default"; 0 is an impossible
        # explicit value, so it is a safe sentinel for that case.
        resolved = options.top_k if options.top_k is not None else 0
        return (
            current_tenant() or "",
            self.fingerprint,
            request.cache_key(resolved),
            options.offset,
            options.limit,
            options.return_names,
        )

    def _forward_any(self, verb: str, path: str) -> _Reply:
        """Forward to any worker (healthy first) — used for fleet-uniform
        answers like ``/v1/methods``."""
        return self._proxy_with_failover(shard_key("__any__", self.fingerprint), verb, path, None)

    # -- scatter-gather ----------------------------------------------------------
    def _scatter_batch(self, body: bytes | None) -> _Reply:
        payload = self._parse_json(body)
        if not isinstance(payload, Mapping):
            return self._error_reply(
                400, _invalid_payload("batch payload must be a JSON object")
            )
        items = payload.get("requests")
        if not isinstance(items, list) or not items:
            return self._error_reply(
                400, _invalid_payload('batch payload needs a non-empty "requests" array')
            )
        if len(items) > MAX_BATCH_REQUESTS:
            return self._error_reply(
                400,
                _invalid_payload(
                    f"batch size {len(items)} exceeds the limit of {MAX_BATCH_REQUESTS}"
                ),
            )

        # Partition the items by owning shard; malformed items fail in place
        # without consuming a proxy call.
        slots: list[dict | None] = [None] * len(items)
        groups: dict[str, list[int]] = {}
        for index, item in enumerate(items):
            if not isinstance(item, Mapping) or not isinstance(item.get("method"), str):
                slots[index] = {
                    "error": _invalid_payload(
                        f"requests[{index}] must be an object naming a method"
                    )
                }
                continue
            key = shard_key(item["method"], self.fingerprint)
            groups.setdefault(key, []).append(index)

        # contextvars do not follow work into pool threads: capture the
        # request id (and resolved tenant, and trace context) here and
        # re-bind them inside each scatter leg so forwarding, attribution,
        # and span grafting stay correct.  The legs share the handler's
        # Trace only through its thread-safe mutators via the context.
        request_id = current_request_id()
        tenant = current_tenant()
        trace_context = current_context()

        def run_group(key: str, indices: list[int]) -> None:
            sub_batch = json.dumps(
                {"requests": [items[i] for i in indices]}
            ).encode("utf-8")
            with request_scope(request_id), tenant_scope(tenant), propagation_scope(
                trace_context
            ):
                reply = self._proxy_with_failover(
                    key, "POST", "/v1/expand/batch", sub_batch
                )
            sub_slots = self._batch_slots(reply, len(indices))
            for slot_index, item_index in enumerate(indices):
                slots[item_index] = sub_slots[slot_index]

        futures = [
            self._scatter_pool.submit(run_group, key, indices)
            for key, indices in groups.items()
        ]
        for future in futures:
            future.result()
        data = {"responses": slots, "count": len(slots)}
        return _Reply.envelope(
            200, success_envelope(request_id or new_request_id(), data)
        )

    @staticmethod
    def _batch_slots(reply: _Reply, expected: int) -> list[dict]:
        """Unwrap one worker's batch envelope into per-item slots, degrading
        a shard-level failure into per-item errors (isolation)."""
        try:
            envelope = json.loads(reply.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            envelope = None
        if isinstance(envelope, dict) and reply.status == 200:
            responses = (envelope.get("data") or {}).get("responses")
            if isinstance(responses, list) and len(responses) == expected:
                return responses
        error = None
        if isinstance(envelope, dict):
            error = envelope.get("error")
        if not isinstance(error, dict):
            error = _unavailable_payload("shard failed while serving this batch")
        return [{"error": error} for _ in range(expected)]

    # -- aggregation -------------------------------------------------------------
    def _worker_scatter(
        self, verb: str, path: str
    ) -> dict[str, tuple[int, bytes] | None]:
        """Call every worker concurrently; ``None`` marks an unreachable one."""
        request_id = current_request_id()

        def run_one(worker_id: str) -> "tuple[int, bytes] | None":
            try:
                with request_scope(request_id):
                    status, raw, _headers = self._forward(worker_id, verb, path, None)
            except _BackendError:
                return None
            self._mark_up(worker_id)
            return status, raw

        futures = {
            worker_id: self._scatter_pool.submit(run_one, worker_id)
            for worker_id in self._ring.nodes
        }
        return {worker_id: future.result() for worker_id, future in futures.items()}

    def _aggregate_health(self) -> _Reply:
        results = self._worker_scatter("GET", "/v1/healthz")
        workers = []
        healthy = 0
        for worker_id in self._ring.nodes:
            result = results[worker_id]
            ok = result is not None and result[0] == 200
            healthy += int(ok)
            workers.append(
                {
                    "worker_id": worker_id,
                    "url": self._backend_urls[worker_id],
                    "healthy": ok,
                }
            )
        if healthy == len(workers):
            status, label = 200, "ok"
        elif healthy:
            status, label = 200, "degraded"
        else:
            status, label = 503, "down"
        data = {
            "status": label,
            "workers": workers,
            "healthy_workers": healthy,
            "total_workers": len(workers),
        }
        request_id = current_request_id() or new_request_id()
        if status >= 400:
            payload = _unavailable_payload("no healthy workers")
            payload["details"] = data
            return _Reply.envelope(status, error_envelope(request_id, payload))
        return _Reply.envelope(status, success_envelope(request_id, data))

    def _aggregate_stats(self) -> _Reply:
        results = self._worker_scatter("GET", "/v1/stats")
        workers: dict[str, dict] = {}
        totals = {"requests": 0, "errors": 0, "cache_hits": 0, "cache_misses": 0}
        for worker_id, result in results.items():
            if result is None:
                workers[worker_id] = {"unreachable": True}
                continue
            try:
                data = json.loads(result[1].decode("utf-8")).get("data") or {}
            except (UnicodeDecodeError, ValueError):
                workers[worker_id] = {"unreachable": True}
                continue
            workers[worker_id] = data
            service = data.get("service") or {}
            cache = data.get("cache") or {}
            totals["requests"] += int(service.get("requests", 0))
            totals["errors"] += int(service.get("errors", 0))
            totals["cache_hits"] += int(cache.get("hits", 0))
            totals["cache_misses"] += int(cache.get("misses", 0))
        data = {
            "gateway": self.stats(),
            "cluster": totals,
            "workers": workers,
        }
        if self.gate is not None:
            # additive: only gated clusters grow this key, so the pinned
            # {"gateway", "cluster", "workers"} default shape is unchanged.
            data["gate"] = self.gate.stats()
        return _Reply.envelope(
            200, success_envelope(current_request_id() or new_request_id(), data)
        )

    def _dashboard(self, html: bool = False) -> _Reply:
        """One joined fleet view for ``repro cluster top`` and dashboards:
        per-worker health, request/error/latency rollups, cache hit rates,
        substrate residency, and live fit-job phases — two concurrent
        scatters (stats + fit jobs) joined gateway-side so a terminal
        refresh costs one round trip, not 2N.  ``?format=html`` renders the
        same document as a self-contained auto-refreshing page."""
        stats_results = self._worker_scatter("GET", "/v1/stats")
        jobs_results = self._worker_scatter("GET", "/v1/fits")
        workers: dict[str, dict] = {}
        healthy = 0
        latencies: list[dict] = []
        totals = {"requests": 0, "errors": 0, "cache_hits": 0, "cache_misses": 0}
        #: probed-retrieval counters summed across the fleet (ANN hot path).
        ann_totals = {"queries": 0, "probes": 0, "shortlisted": 0, "exact_fallbacks": 0}
        #: tenant -> summed usage buckets across every metered worker.
        usage_totals: dict[str, dict] = {}
        for worker_id in self._ring.nodes:
            url = self._backend_urls[worker_id]
            data = self._parse_envelope_data(stats_results[worker_id])
            if data is None:
                workers[worker_id] = {"healthy": False, "url": url}
                continue
            healthy += 1
            service = data.get("service") or {}
            cache = data.get("cache") or {}
            registry = data.get("registry") or {}
            for tenant_id, bucket in (
                (data.get("usage") or {}).get("tenants") or {}
            ).items():
                if not isinstance(bucket, dict):
                    continue
                joined = usage_totals.setdefault(
                    str(tenant_id),
                    {
                        "requests": 0,
                        "cache_hits": 0,
                        "fits": 0,
                        "compute_seconds": 0.0,
                        "fit_seconds": 0.0,
                    },
                )
                for field_name in joined:
                    try:
                        joined[field_name] += bucket.get(field_name, 0) or 0
                    except TypeError:
                        continue
            substrates = registry.get("substrates") or {}
            worker_ann = substrates.get("ann") or {}
            for field_name in ann_totals:
                try:
                    ann_totals[field_name] += int(worker_ann.get(field_name, 0) or 0)
                except (TypeError, ValueError):
                    continue
            latency = dict(service.get("latency_ms") or {})
            if latency.get("buckets"):
                # copy: ``latency`` loses its buckets below for the per-worker
                # view, but the merge needs them.
                latencies.append(dict(latency))
            hits = int(cache.get("hits", 0))
            misses = int(cache.get("misses", 0))
            lookups = hits + misses
            totals["requests"] += int(service.get("requests", 0))
            totals["errors"] += int(service.get("errors", 0))
            totals["cache_hits"] += hits
            totals["cache_misses"] += misses
            fit_jobs = []
            jobs_data = self._parse_envelope_data(jobs_results.get(worker_id)) or {}
            for job in jobs_data.get("jobs") or []:
                if isinstance(job, dict) and job.get("status") in ("queued", "running"):
                    fit_jobs.append(
                        {
                            "method": job.get("method"),
                            "status": job.get("status"),
                            "phase": job.get("phase"),
                            "progress": job.get("progress"),
                        }
                    )
            # the raw bucket list is scrape food, not dashboard food.
            latency.pop("buckets", None)
            workers[worker_id] = {
                "healthy": True,
                "url": url,
                "requests": int(service.get("requests", 0)),
                "errors": int(service.get("errors", 0)),
                "cache_hit_rate": (hits / lookups) if lookups else 0.0,
                "latency_ms": latency,
                "fitted": registry.get("fitted") or [],
                "pinned": registry.get("pinned") or [],
                "substrates_resident": int(substrates.get("resident", 0)),
                "fit_jobs": fit_jobs,
            }
        # the gateway's own meter bills cache hits that never reached a
        # worker; fold it into the same per-tenant usage rollup.
        if self.usage is not None:
            for tenant_id, bucket in (
                self.usage.summary().get("tenants") or {}
            ).items():
                joined = usage_totals.setdefault(
                    str(tenant_id),
                    {
                        "requests": 0,
                        "cache_hits": 0,
                        "fits": 0,
                        "compute_seconds": 0.0,
                        "fit_seconds": 0.0,
                    },
                )
                for field_name in joined:
                    try:
                        joined[field_name] += bucket.get(field_name, 0) or 0
                    except TypeError:
                        continue
        total = len(self._ring.nodes)
        status = "ok" if healthy == total else ("degraded" if healthy else "down")
        lookups = totals["cache_hits"] + totals["cache_misses"]
        data = {
            "fleet": {
                "status": status,
                "healthy_workers": healthy,
                "total_workers": total,
            },
            "cluster": {
                "requests": totals["requests"],
                "errors": totals["errors"],
                "cache_hit_rate": (totals["cache_hits"] / lookups) if lookups else 0.0,
                "latency_ms": merge_bucket_lists(latencies),
                "ann": ann_totals,
            },
            "workers": workers,
            "gateway": self.stats(),
        }
        if usage_totals:
            for tenant_usage in usage_totals.values():
                tenant_usage["compute_seconds"] = round(
                    tenant_usage["compute_seconds"], 6
                )
                tenant_usage["fit_seconds"] = round(tenant_usage["fit_seconds"], 6)
            data["usage"] = {
                "tenants": {
                    tenant_id: usage_totals[tenant_id]
                    for tenant_id in sorted(usage_totals)
                }
            }
        if self.gate is not None:
            tenants = self.gate.tenant_summary()
            for row in tenants:
                tenant_usage = usage_totals.get(str(row.get("tenant")))
                if tenant_usage is not None:
                    row["compute_seconds"] = tenant_usage["compute_seconds"]
            data["tenants"] = tenants
        elif usage_totals:
            # ungated cluster: the tenants table is synthesized from usage
            # so the cost column still has a home.
            data["tenants"] = [
                {
                    "tenant": tenant_id,
                    "requests": usage_totals[tenant_id]["requests"],
                    "throttled": 0,
                    "compute_seconds": usage_totals[tenant_id]["compute_seconds"],
                }
                for tenant_id in sorted(usage_totals)
            ]
        if html:
            return _Reply(
                status=200,
                body=_render_dashboard_html(data).encode("utf-8"),
                headers={},
                content_type="text/html; charset=utf-8",
            )
        return _Reply.envelope(
            200, success_envelope(current_request_id() or new_request_id(), data)
        )

    @staticmethod
    def _parse_envelope_data(result: "tuple[int, bytes] | None") -> dict | None:
        """The ``data`` object of one scattered worker envelope, or ``None``
        for an unreachable/failed worker or an unparseable body."""
        if result is None or result[0] != 200:
            return None
        try:
            data = json.loads(result[1].decode("utf-8")).get("data")
        except (UnicodeDecodeError, ValueError, AttributeError):
            return None
        return data if isinstance(data, dict) else None

    def _merged_fit_jobs(self) -> _Reply:
        results = self._worker_scatter("GET", "/v1/fits")
        jobs: list[dict] = []
        for worker_id, result in results.items():
            if result is None or result[0] != 200:
                continue
            try:
                data = json.loads(result[1].decode("utf-8")).get("data") or {}
            except (UnicodeDecodeError, ValueError):
                continue
            for job in data.get("jobs") or []:
                if isinstance(job, dict):
                    jobs.append({**job, "worker_id": worker_id})
        jobs.sort(key=lambda job: -float(job.get("created_at") or 0.0))
        data = {"jobs": jobs, "count": len(jobs)}
        return _Reply.envelope(
            200, success_envelope(current_request_id() or new_request_id(), data)
        )

    def _find_fit_job(self, verb: str, path: str) -> _Reply:
        """Ask the fleet for one job id, owner-agnostic: jobs were routed by
        method, but the ring may have moved since, so every worker is a
        candidate; the first non-404 answer wins."""
        reachable = 0
        for worker_id in self._attempt_order(shard_key("__fits__", self.fingerprint)):
            try:
                status, raw, headers = self._forward(worker_id, verb, path, None)
            except _BackendUnsafe as exc:
                if verb == "DELETE":
                    # the cancel may have landed; asking another worker would
                    # just 404 and mask it — report retryable instead.
                    return self._error_reply(503, _unavailable_payload(str(exc)))
                continue
            except _BackendError:
                continue
            self._mark_up(worker_id)
            reachable += 1
            if status != 404:
                self._proxied.inc()
                self._routed.inc(worker=worker_id)
                headers[WORKER_HEADER] = worker_id
                return _Reply(status=status, body=raw, headers=headers)
        if not reachable:
            return self._error_reply(
                503, _unavailable_payload("no worker available to resolve the job")
            )
        job_id = path[len("/v1/fits/"):]
        return self._error_reply(
            404,
            {
                "error": "JobNotFoundError",
                "code": CODE_JOB_NOT_FOUND,
                "message": f"no fit job {job_id!r} on any worker",
                "details": {"job_id": job_id},
                "retryable": False,
            },
        )

    # -- trace search ------------------------------------------------------------
    def _list_traces(self, query: str = "") -> _Reply:
        """Search the gateway's own joined-trace ring (worker rings stay
        reachable directly on each worker's ``/v1/traces``)."""
        if self.traces is None:
            return self._error_reply(
                400,
                _invalid_payload(
                    "tracing is not enabled on the gateway (set trace_sample_rate)"
                ),
            )
        try:
            filters = parse_trace_query(query)
        except ServiceError as exc:
            return self._error_reply(400, _invalid_payload(str(exc)))
        rows = self.traces.query(**filters)
        return _Reply.envelope(
            200,
            success_envelope(
                current_request_id() or new_request_id(),
                {"traces": rows, "count": len(rows)},
            ),
        )

    def _find_trace(self, trace_id: str) -> _Reply:
        """The gateway's joined trace when it kept one; otherwise ask every
        worker (front-line traffic may be traced worker-side only).  The
        first non-miss answer wins."""
        if self.traces is not None:
            record = self.traces.get(trace_id)
            if record is not None:
                return _Reply.envelope(
                    200,
                    success_envelope(
                        current_request_id() or new_request_id(),
                        {"trace": record},
                    ),
                )
        path = f"/v1/traces/{trace_id}"
        for worker_id in self._attempt_order(
            shard_key("__traces__", self.fingerprint)
        ):
            try:
                status, raw, headers = self._forward(worker_id, "GET", path, None)
            except _BackendError:
                continue
            self._mark_up(worker_id)
            if status not in (400, 404):
                # 404: the worker never kept it; 400: worker tracing is off.
                self._proxied.inc()
                self._routed.inc(worker=worker_id)
                headers[WORKER_HEADER] = worker_id
                return _Reply(status=status, body=raw, headers=headers)
        return self._error_reply(
            404,
            {
                "error": "NotFound",
                "code": CODE_NOT_FOUND,
                "message": f"no kept trace {trace_id!r}",
                "details": {"trace_id": trace_id},
                "retryable": False,
            },
        )

    # -- introspection -----------------------------------------------------------
    def stats(self) -> dict:
        """The legacy stats dict (wire shape pinned), as a registry view.

        The ``cache`` key is additive: it appears only when the gateway
        result cache is enabled, so the default shape is unchanged."""
        down_until = self._down_snapshot()
        now = time.monotonic()
        merged = {
            "workers": list(self._ring.nodes),
            "fingerprint": self.fingerprint,
            "virtual_nodes": self._ring.virtual_nodes,
            "requests": int(self._requests.total()),
            "proxied": int(self._proxied.total()),
            "failovers": int(self._failovers.total()),
            "backend_errors": int(self._backend_errors.total()),
            "no_backend_available": int(self._no_backend.total()),
            "routed": {
                worker_id: int(self._routed.value(worker=worker_id))
                for worker_id in self._urls
            },
            "sidelined": sorted(
                worker_id
                for worker_id, until in down_until.items()
                if now < until
            ),
        }
        if self.cache is not None:
            merged["cache"] = self.cache.stats()
        return merged

    # -- helpers -----------------------------------------------------------------
    @staticmethod
    def _parse_json(body: bytes | None):
        if not body:
            return None
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return None

    @staticmethod
    def _error_reply(status: int, payload: dict) -> _Reply:
        request_id = current_request_id() or new_request_id()
        reply = _Reply.envelope(status, error_envelope(request_id, payload))
        # 429/503 refusals carry their backoff hint on the wire too.
        retry_after = (payload.get("details") or {}).get("retry_after")
        if retry_after is not None:
            reply.headers["Retry-After"] = retry_after_header(retry_after)
        return reply


#: seconds between HTML dashboard auto-refreshes (meta tag, no scripts).
DASHBOARD_REFRESH_SECONDS = 5

_DASHBOARD_STYLE = (
    "body{font-family:monospace;background:#111;color:#ddd;margin:2em}"
    "h1{font-size:1.2em}h2{font-size:1em;margin-top:1.5em}"
    "table{border-collapse:collapse}"
    "td,th{border:1px solid #444;padding:0.3em 0.8em;text-align:left}"
    ".ok{color:#7c7}.degraded{color:#cc7}.down{color:#c77}"
    ".bar{display:inline-block;width:12em;height:0.8em;background:#333;"
    "vertical-align:middle}"
    ".bar span{display:block;height:100%;background:#7c7}"
)


def _render_dashboard_html(data: dict) -> str:
    """The ``/v1/dashboard`` document as a self-contained HTML page.

    No scripts, no external assets — a ``<meta http-equiv="refresh">`` tag
    re-polls the endpoint, so the page works from any browser that can
    reach the gateway and nothing else.
    """
    fleet = data.get("fleet") or {}
    cluster = data.get("cluster") or {}
    gateway = data.get("gateway") or {}
    status = str(fleet.get("status", "unknown"))
    latency = cluster.get("latency_ms") or {}

    def cell(value) -> str:
        return escape("-" if value is None else str(value))

    def bar(fraction: float) -> str:
        percent = max(0.0, min(1.0, float(fraction))) * 100.0
        return (
            f'<span class="bar"><span style="width:{percent:.1f}%"></span></span>'
            f" {percent:.0f}%"
        )

    rows = []
    for worker_id, worker in sorted((data.get("workers") or {}).items()):
        if not worker.get("healthy"):
            rows.append(
                f"<tr><td>{cell(worker_id)}</td>"
                f'<td class="down">down</td><td colspan="5"></td></tr>'
            )
            continue
        hit_rate = float(worker.get("cache_hit_rate", 0.0))
        p99 = (worker.get("latency_ms") or {}).get("p99_ms")
        jobs = []
        for job in worker.get("fit_jobs") or []:
            label = f"{job.get('method')} [{job.get('phase') or job.get('status')}]"
            progress = job.get("progress") or {}
            fraction = progress.get("fraction") if isinstance(progress, dict) else None
            jobs.append(
                escape(label) + (" " + bar(fraction) if fraction is not None else "")
            )
        rows.append(
            f"<tr><td>{cell(worker_id)}</td>"
            f'<td class="ok">up</td>'
            f"<td>{cell(worker.get('requests'))}</td>"
            f"<td>{bar(hit_rate)}</td>"
            f"<td>{cell(round(p99, 1) if p99 is not None else None)}</td>"
            f"<td>{cell(', '.join(worker.get('fitted') or []))}</td>"
            f"<td>{'<br>'.join(jobs) if jobs else '-'}</td></tr>"
        )
    routed = gateway.get("routed") or {}
    shard_rows = "".join(
        f"<tr><td>{cell(worker_id)}</td><td>{cell(count)}</td></tr>"
        for worker_id, count in sorted(routed.items())
    )
    tenants_table = ""
    tenants = data.get("tenants")
    if tenants:
        # the cost column appears once any worker reports usage metering.
        with_cost = any("compute_seconds" in (row or {}) for row in tenants)
        tenant_rows = "".join(
            f"<tr><td>{cell(row.get('tenant'))}</td>"
            f"<td>{cell(row.get('requests'))}</td>"
            f"<td>{cell(row.get('throttled'))}</td>"
            + (
                f"<td>{cell(row.get('compute_seconds'))}</td>"
                if with_cost
                else ""
            )
            + "</tr>"
            for row in tenants
        )
        cost_header = "<th>compute s</th>" if with_cost else ""
        tenants_table = (
            "<h2>tenants</h2>"
            "<table><tr><th>tenant</th><th>requests</th><th>throttled</th>"
            f"{cost_header}</tr>"
            f"{tenant_rows}</table>"
        )
    p99 = latency.get("p99_ms")
    ann = cluster.get("ann") or {}
    ann_fragment = ""
    if ann.get("queries"):
        ann_fragment = (
            f" &middot; ann queries {cell(ann.get('queries'))}"
            f" (exact fallbacks {cell(ann.get('exact_fallbacks'))})"
        )
    return (
        "<!doctype html><html><head>"
        '<meta charset="utf-8">'
        f'<meta http-equiv="refresh" content="{DASHBOARD_REFRESH_SECONDS}">'
        "<title>repro cluster</title>"
        f"<style>{_DASHBOARD_STYLE}</style></head><body>"
        f'<h1>repro cluster &mdash; <span class="{escape(status)}">'
        f"{escape(status)}</span> "
        f"({cell(fleet.get('healthy_workers'))}/{cell(fleet.get('total_workers'))}"
        " workers)</h1>"
        f"<p>requests {cell(cluster.get('requests'))}"
        f" &middot; errors {cell(cluster.get('errors'))}"
        f" &middot; cache hit rate {bar(float(cluster.get('cache_hit_rate', 0.0)))}"
        f" &middot; p99 {cell(round(p99, 1) if p99 is not None else None)} ms"
        f"{ann_fragment}</p>"
        "<h2>workers</h2><table><tr><th>worker</th><th>state</th><th>requests</th>"
        "<th>cache hits</th><th>p99 ms</th><th>fitted</th><th>fit jobs</th></tr>"
        f"{''.join(rows)}</table>"
        "<h2>shard load (gateway routed)</h2>"
        f"<table><tr><th>worker</th><th>proxied</th></tr>{shard_rows}</table>"
        f"{tenants_table}"
        "</body></html>"
    )


class _GatewayHandler(BaseHTTPRequestHandler):
    """Thin HTTP shim over :meth:`ClusterGateway.handle`."""

    server_version = "repro-gateway/1.0"
    protocol_version = "HTTP/1.1"
    # See repro.serve.server._Handler: without TCP_NODELAY the two-send
    # response (headers, then body) stalls ~40ms behind Nagle + delayed ACK
    # on keep-alive connections.
    disable_nagle_algorithm = True

    @property
    def gateway(self) -> ClusterGateway:
        return self.server.gateway  # type: ignore[attr-defined]

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._handle("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._handle("DELETE")

    def _handle(self, verb: str) -> None:
        started = time.perf_counter()
        path, _, query = self.path.partition("?")
        path = path.rstrip("/") or "/"
        # Honor a syntactically valid client-supplied X-Request-Id so one id
        # correlates gateway log, worker log, and envelope; replace anything
        # malformed rather than echoing hostile bytes into logs and headers.
        inbound = (self.headers.get(REQUEST_ID_HEADER) or "").strip()
        request_id = inbound if is_valid_request_id(inbound) else new_request_id()
        with request_scope(request_id):
            reply = self._serve(verb, path, query)
        # proxied replies already carry the worker's echoed id (equal to
        # ours, since we forward it); gateway-local envelopes get it here.
        reply.headers.setdefault(REQUEST_ID_HEADER, request_id)
        self._send(reply)
        self._access_log(
            request_id=reply.headers[REQUEST_ID_HEADER],
            verb=verb,
            route=path,
            status=reply.status,
            latency_ms=(time.perf_counter() - started) * 1000.0,
            worker=reply.headers.get(WORKER_HEADER),
            trace_id=reply.headers.get(TRACE_ID_HEADER),
        )

    def _serve(self, verb: str, path: str, query: str = "") -> _Reply:
        body: bytes | None = None
        if verb == "POST":
            try:
                length = int(self.headers.get("Content-Length") or 0)
            except ValueError:
                length = -1
            if length < 0 or length > MAX_BODY_BYTES:
                return ClusterGateway._error_reply(
                    400, _invalid_payload("invalid or oversized request body")
                )
            body = self.rfile.read(length) if length else None
        api_key = (self.headers.get(API_KEY_HEADER) or "").strip() or None
        return self.gateway.handle(verb, path, body, query, api_key=api_key)

    def _send(self, reply: _Reply) -> None:
        self.send_response(reply.status)
        self.send_header("Content-Type", reply.content_type)
        self.send_header("Content-Length", str(len(reply.body)))
        for name, value in reply.headers.items():
            self.send_header(name, value)
        if reply.status >= 400:
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(reply.body)

    def _access_log(
        self,
        request_id: str,
        verb: str,
        route: str,
        status: int,
        latency_ms: float,
        worker: str | None,
        trace_id: str | None = None,
    ) -> None:
        if not self.gateway.config.gateway_access_log:
            return
        line = {
            "request_id": request_id,
            "method": verb,
            "route": route,
            "status": status,
            "latency_ms": round(latency_ms, 3),
            "worker": worker,
        }
        # stamped only on traced requests; untraced lines keep the exact
        # pre-tracing key set.
        if trace_id is not None:
            line["trace_id"] = trace_id
        gateway_access_logger.info("%s", json.dumps(line, sort_keys=True))

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass
