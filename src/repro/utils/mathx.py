"""Numerical helpers used throughout the library.

All functions operate on numpy arrays and are written to be numerically
stable (softmax/log-softmax subtract the maximum, norms are clamped away
from zero).
"""

from __future__ import annotations

import numpy as np

_EPS = 1e-12


def l2_normalize(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Return ``x`` scaled to unit L2 norm along ``axis``.

    Zero vectors are returned unchanged (instead of producing NaNs).
    """
    x = np.asarray(x, dtype=np.float64)
    norm = np.linalg.norm(x, axis=axis, keepdims=True)
    return x / np.maximum(norm, _EPS)


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity between two 1-D vectors."""
    a = np.asarray(a, dtype=np.float64).ravel()
    b = np.asarray(b, dtype=np.float64).ravel()
    denom = max(float(np.linalg.norm(a) * np.linalg.norm(b)), _EPS)
    return float(np.dot(a, b) / denom)


def cosine_similarity_matrix(a: np.ndarray, b: np.ndarray | None = None) -> np.ndarray:
    """Pairwise cosine similarity between rows of ``a`` and rows of ``b``.

    If ``b`` is omitted, similarities among rows of ``a`` are returned.
    """
    a = l2_normalize(np.asarray(a, dtype=np.float64), axis=1)
    if b is None:
        return a @ a.T
    b = l2_normalize(np.asarray(b, dtype=np.float64), axis=1)
    return a @ b.T


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    x = np.asarray(x, dtype=np.float64)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax."""
    x = np.asarray(x, dtype=np.float64)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def logsumexp(x: np.ndarray, axis: int | None = None) -> np.ndarray | float:
    """Numerically stable log-sum-exp reduction."""
    x = np.asarray(x, dtype=np.float64)
    m = np.max(x, axis=axis, keepdims=True)
    out = np.log(np.sum(np.exp(x - m), axis=axis, keepdims=True)) + m
    if axis is None:
        return float(out.reshape(()))
    return np.squeeze(out, axis=axis)
