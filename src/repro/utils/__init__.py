"""Shared utilities: seeded randomness, math helpers, and lightweight IO."""

from repro.utils.rng import RandomState, derive_seed
from repro.utils.mathx import (
    cosine_similarity,
    cosine_similarity_matrix,
    l2_normalize,
    log_softmax,
    logsumexp,
    softmax,
)
from repro.utils.iox import read_json, read_jsonl, write_json, write_jsonl

__all__ = [
    "RandomState",
    "derive_seed",
    "cosine_similarity",
    "cosine_similarity_matrix",
    "l2_normalize",
    "log_softmax",
    "logsumexp",
    "softmax",
    "read_json",
    "read_jsonl",
    "write_json",
    "write_jsonl",
]
