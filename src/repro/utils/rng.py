"""Deterministic randomness helpers.

Every stochastic component in the library receives an explicit integer seed
and derives child seeds through :func:`derive_seed`, so that runs are fully
reproducible and independent components do not share RNG streams.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(base_seed: int, *labels: object) -> int:
    """Derive a child seed from ``base_seed`` and a sequence of labels.

    The derivation is a stable hash of the base seed and the string form of
    each label, so the same (seed, labels) pair always yields the same child
    seed, and different labels yield (with overwhelming probability) different
    child seeds.

    Parameters
    ----------
    base_seed:
        The parent seed.
    labels:
        Arbitrary hashable labels identifying the component (e.g. a module
        name and an index).

    Returns
    -------
    int
        A non-negative 32-bit seed suitable for :class:`numpy.random.Generator`.
    """
    digest = hashlib.sha256()
    digest.update(str(int(base_seed)).encode("utf-8"))
    for label in labels:
        digest.update(b"\x00")
        digest.update(str(label).encode("utf-8"))
    return int.from_bytes(digest.digest()[:4], "big")


class RandomState:
    """A thin, seedable wrapper around :class:`numpy.random.Generator`.

    The wrapper exists so that library code never touches global numpy state
    and so that child RNGs can be spawned with meaningful labels.
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._rng = np.random.default_rng(self.seed)

    def child(self, *labels: object) -> "RandomState":
        """Return a new :class:`RandomState` derived from this one."""
        return RandomState(derive_seed(self.seed, *labels))

    @property
    def generator(self) -> np.random.Generator:
        """The underlying numpy generator."""
        return self._rng

    # -- convenience proxies -------------------------------------------------
    def random(self) -> float:
        return float(self._rng.random())

    def integers(self, low: int, high: int | None = None) -> int:
        return int(self._rng.integers(low, high))

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return float(self._rng.uniform(low, high))

    def normal(self, loc: float = 0.0, scale: float = 1.0, size=None):
        return self._rng.normal(loc, scale, size)

    def choice(self, seq, size=None, replace: bool = True, p=None):
        return self._rng.choice(seq, size=size, replace=replace, p=p)

    def sample(self, seq, k: int) -> list:
        """Sample ``k`` distinct items from ``seq`` (like :func:`random.sample`)."""
        seq = list(seq)
        if k > len(seq):
            raise ValueError(f"cannot sample {k} items from a sequence of {len(seq)}")
        idx = self._rng.choice(len(seq), size=k, replace=False)
        return [seq[int(i)] for i in idx]

    def shuffle(self, seq: list) -> list:
        """Return a shuffled copy of ``seq`` (the input is not modified)."""
        out = list(seq)
        self._rng.shuffle(out)
        return out
