"""Small JSON / JSON-lines IO helpers used for dataset persistence."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Iterator


def write_json(path: str | Path, obj: Any, indent: int = 2) -> None:
    """Write ``obj`` as pretty-printed JSON to ``path`` (parents are created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(obj, handle, indent=indent, ensure_ascii=False)


def read_json(path: str | Path) -> Any:
    """Read a JSON document from ``path``."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return json.load(handle)


def write_jsonl(path: str | Path, rows: Iterable[Any]) -> int:
    """Write an iterable of JSON-serialisable rows to ``path`` as JSON lines.

    Returns the number of rows written.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(json.dumps(row, ensure_ascii=False))
            handle.write("\n")
            count += 1
    return count


def read_jsonl(path: str | Path) -> Iterator[Any]:
    """Iterate over JSON-lines rows stored at ``path``."""
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)
