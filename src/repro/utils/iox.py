"""Small JSON / JSON-lines IO helpers used for dataset persistence."""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping


def to_jsonable(obj: Any) -> Any:
    """Recursively convert ``obj`` into plain JSON-serialisable values.

    Shared by the experiment ``--json`` dump and the serving protocol so both
    produce the same encoding: dataclasses and objects exposing ``to_dict()``
    become dicts, mappings keep (stringified) keys, sets are sorted for
    determinism, numpy scalars/arrays reduce via ``item()``/``tolist()``, and
    anything else unknown falls back to ``str`` — explicitly, rather than via
    a silent ``json.dumps(default=str)``.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        # One pass over the fields (asdict would deep-copy the whole tree
        # first and bypass nested objects' to_dict hooks).
        return {
            f.name: to_jsonable(getattr(obj, f.name)) for f in dataclasses.fields(obj)
        }
    if hasattr(obj, "to_dict") and callable(obj.to_dict):
        return to_jsonable(obj.to_dict())
    if isinstance(obj, Mapping):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (set, frozenset)):
        return [to_jsonable(v) for v in sorted(obj, key=repr)]
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(v) for v in obj]
    if isinstance(obj, Path):
        return str(obj)
    if hasattr(obj, "item") and callable(obj.item) and getattr(obj, "ndim", None) == 0:
        return obj.item()  # numpy scalar
    if hasattr(obj, "tolist") and callable(obj.tolist):
        return to_jsonable(obj.tolist())  # numpy array
    return str(obj)


def write_json(path: str | Path, obj: Any, indent: int = 2) -> None:
    """Write ``obj`` as pretty-printed JSON to ``path`` (parents are created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(obj, handle, indent=indent, ensure_ascii=False)


def read_json(path: str | Path) -> Any:
    """Read a JSON document from ``path``."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return json.load(handle)


def write_jsonl(path: str | Path, rows: Iterable[Any]) -> int:
    """Write an iterable of JSON-serialisable rows to ``path`` as JSON lines.

    Returns the number of rows written.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(json.dumps(row, ensure_ascii=False))
            handle.write("\n")
            count += 1
    return count


def read_jsonl(path: str | Path) -> Iterator[Any]:
    """Iterate over JSON-lines rows stored at ``path``."""
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)
