"""Lightweight request tracing for the expand hot path and fit jobs.

A :class:`Trace` collects named spans (start offset + duration in
milliseconds, relative to the trace's birth) for one request.  The active
trace rides a :mod:`contextvars` ContextVar, so instrumented code deep in
the stack opens spans with the module-level :func:`span` context manager
without threading a trace object through every signature — and when no
trace is active, :func:`span` is a no-op costing one ContextVar read,
which is what keeps the uninstrumented hot path fast.

Threading rules (load-bearing — the micro-batcher depends on them):

* ``Trace._stack`` (the open-span chain used for parent/child nesting) is
  only touched by the thread that activated the trace; it is *not*
  shared across threads.
* ``add_span`` and ``graft`` take the trace's lock, so a batch-executor
  thread may stamp spans onto a caller's trace — but only **before** it
  resolves the caller's future, because the caller reads its trace
  immediately after ``future.result()`` returns.

The same module carries the request-id ContextVar: the HTTP handler (or
in-process transport) enters :func:`request_scope` around dispatch so any
layer — gateway forwarding, envelope rendering, slow-query logging — can
recover the id via :func:`current_request_id` without plumbing.
"""

from __future__ import annotations

import contextlib
import contextvars
import threading
import time
from dataclasses import dataclass, field

_TRACE: contextvars.ContextVar["Trace | None"] = contextvars.ContextVar(
    "repro_obs_trace", default=None
)
_REQUEST_ID: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro_obs_request_id", default=None
)
_TENANT: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro_obs_tenant", default=None
)


@dataclass
class Span:
    name: str
    start_ms: float
    duration_ms: float
    parent: str | None = None
    meta: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        payload = {
            "name": self.name,
            "start_ms": round(self.start_ms, 3),
            "duration_ms": round(self.duration_ms, 3),
        }
        if self.parent is not None:
            payload["parent"] = self.parent
        if self.meta:
            payload["meta"] = self.meta
        return payload


class Trace:
    """Per-request span collector.  Cheap to build, safe to share for writes."""

    __slots__ = ("request_id", "t0", "_lock", "_spans", "_stack")

    def __init__(self, request_id: str | None = None):
        self.request_id = request_id
        self.t0 = time.perf_counter()
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        # Open-span names for nesting; only the activating thread touches it.
        self._stack: list[str] = []

    def now_ms(self) -> float:
        return (time.perf_counter() - self.t0) * 1000.0

    def add_span(
        self,
        name: str,
        start_ms: float,
        duration_ms: float,
        parent: str | None = None,
        **meta,
    ) -> None:
        """Record a finished span (thread-safe; usable from worker threads)."""
        entry = Span(name, start_ms, duration_ms, parent=parent, meta=dict(meta))
        with self._lock:
            self._spans.append(entry)

    def graft(self, other: "Trace", parent: str | None = None) -> None:
        """Copy another trace's spans onto this one, re-based onto this
        trace's clock and re-parented under ``parent`` (used to surface a
        shared batch-execution trace inside each caller's trace)."""
        offset_ms = (other.t0 - self.t0) * 1000.0
        with other._lock:
            copied = list(other._spans)
        with self._lock:
            for entry in copied:
                self._spans.append(
                    Span(
                        entry.name,
                        entry.start_ms + offset_ms,
                        entry.duration_ms,
                        parent=entry.parent if entry.parent is not None else parent,
                        meta=dict(entry.meta),
                    )
                )

    def spans(self) -> list[Span]:
        with self._lock:
            return list(self._spans)

    def to_list(self) -> list[dict]:
        spans = self.spans()
        spans.sort(key=lambda entry: entry.start_ms)
        return [entry.to_dict() for entry in spans]


def current_trace() -> Trace | None:
    return _TRACE.get()


@contextlib.contextmanager
def activate(trace: Trace | None):
    """Make ``trace`` the active trace for the calling context."""
    token = _TRACE.set(trace)
    try:
        yield trace
    finally:
        _TRACE.reset(token)


@contextlib.contextmanager
def span(name: str, **meta):
    """Record a span on the active trace; a no-op when tracing is off.

    Nesting is inferred from the activating thread's open-span stack, so

        with span("batch"):
            with span("execute"): ...

    records ``execute`` with ``parent="batch"``.
    """
    trace = _TRACE.get()
    if trace is None:
        yield None
        return
    parent = trace._stack[-1] if trace._stack else None
    trace._stack.append(name)
    start_ms = trace.now_ms()
    started = time.perf_counter()
    try:
        yield trace
    finally:
        duration_ms = (time.perf_counter() - started) * 1000.0
        trace._stack.pop()
        trace.add_span(name, start_ms, duration_ms, parent=parent, **meta)


def current_request_id() -> str | None:
    return _REQUEST_ID.get()


@contextlib.contextmanager
def request_scope(request_id: str | None):
    """Bind the request id for the calling context (handler-entry scope)."""
    token = _REQUEST_ID.set(request_id)
    try:
        yield request_id
    finally:
        _REQUEST_ID.reset(token)


def current_tenant() -> str | None:
    """The tenant id the front door resolved for this request, if any."""
    return _TENANT.get()


class tenant_scope:  # noqa: N801 - context-manager used like a function
    """Bind the resolved tenant id for the calling context.

    Entered by the HTTP handler (or cluster gateway) right after the gate
    admits a request, next to :func:`request_scope` — so per-tenant metric
    labels, access-log attribution, and worker forwarding all read it via
    :func:`current_tenant` without plumbing.  ContextVars do not cross
    thread-pool boundaries; fan-out code (batch items, gateway scatter)
    must capture the tenant and re-enter this scope on the worker thread,
    exactly as it already re-binds the request id.

    A plain class, not ``@contextmanager``: this sits on the per-request
    hot path and the generator protocol costs ~1us per entry that a
    ``__slots__`` object does not.
    """

    __slots__ = ("_tenant_id", "_token")

    def __init__(self, tenant_id: str | None):
        self._tenant_id = tenant_id

    def __enter__(self) -> str | None:
        self._token = _TENANT.set(self._tenant_id)
        return self._tenant_id

    def __exit__(self, *_exc_info) -> None:
        _TENANT.reset(self._token)
