"""Lightweight request tracing for the expand hot path and fit jobs.

A :class:`Trace` collects named spans (start offset + duration in
milliseconds, relative to the trace's birth) for one request.  The active
trace rides a :mod:`contextvars` ContextVar, so instrumented code deep in
the stack opens spans with the module-level :func:`span` context manager
without threading a trace object through every signature — and when no
trace is active, :func:`span` is a no-op costing one ContextVar read,
which is what keeps the uninstrumented hot path fast.

Traces carry a W3C-trace-context-style identity: every trace owns a
128-bit ``trace_id`` and every span a 64-bit ``span_id`` with a
``parent_id`` pointer, so duplicate sibling names (two ``score_candidates``
spans in one request) stay unambiguous.  The legacy name-based ``parent``
attribute is kept alongside because the ``debug.timings`` wire shape is
pinned.  :func:`format_traceparent` / :func:`parse_traceparent` serialize
the identity as a ``traceparent`` header (``00-<trace>-<span>-<flags>``),
and :class:`propagation_scope` carries a captured :class:`TraceContext`
across thread-pool boundaries where activating the trace itself would be
unsafe (``_stack`` is single-threaded; see below).

Threading rules (load-bearing — the micro-batcher depends on them):

* ``Trace._stack`` (the open-span chain used for parent/child nesting) is
  only touched by the thread that activated the trace; it is *not*
  shared across threads.
* ``add_span`` and ``graft`` take the trace's lock, so a batch-executor
  thread may stamp spans onto a caller's trace — but only **before** it
  resolves the caller's future, because the caller reads its trace
  immediately after ``future.result()`` returns.

The same module carries the request-id ContextVar: the HTTP handler (or
in-process transport) enters :func:`request_scope` around dispatch so any
layer — gateway forwarding, envelope rendering, slow-query logging — can
recover the id via :func:`current_request_id` without plumbing.
"""

from __future__ import annotations

import contextlib
import contextvars
import os
import threading
import time
from dataclasses import dataclass, field
from typing import NamedTuple

#: inbound/outbound W3C trace-context header carried on every worker hop.
TRACEPARENT_HEADER = "traceparent"
#: response header surfacing the trace id minted (or continued) for a request.
TRACE_ID_HEADER = "X-Repro-Trace-Id"
#: response header a worker uses to return its span list to the gateway
#: (compact JSON: ``{"trace_id": ..., "spans": [...]}``), so the gateway can
#: graft the worker fragment into its own tree.
TRACE_SPANS_HEADER = "X-Repro-Trace"

_TRACE: contextvars.ContextVar["Trace | None"] = contextvars.ContextVar(
    "repro_obs_trace", default=None
)
_PROPAGATION: contextvars.ContextVar["TraceContext | None"] = contextvars.ContextVar(
    "repro_obs_trace_context", default=None
)
_REQUEST_ID: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro_obs_request_id", default=None
)
_TENANT: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro_obs_tenant", default=None
)


def new_trace_id() -> str:
    """A 128-bit lowercase-hex trace id (W3C traceparent format)."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """A 64-bit lowercase-hex span id."""
    return os.urandom(8).hex()


class TraceContext(NamedTuple):
    """The propagatable identity of one point in a trace.

    ``trace`` is a local-only carrier (never serialized): fan-out code that
    captured the context can keep stamping spans onto the originating trace
    from worker threads via the thread-safe ``add_span``/``graft`` surface.
    """

    trace_id: str
    span_id: str
    sampled: bool = True
    trace: "Trace | None" = None


def format_traceparent(context: TraceContext) -> str:
    flags = "01" if context.sampled else "00"
    return f"00-{context.trace_id}-{context.span_id}-{flags}"


def _is_hex(value: str) -> bool:
    try:
        int(value, 16)
    except ValueError:
        return False
    return True


def parse_traceparent(header: str | None) -> TraceContext | None:
    """Parse a ``traceparent`` header; ``None`` for anything malformed."""
    if not header:
        return None
    parts = header.strip().split("-")
    if len(parts) != 4:
        return None
    version, trace_id, span_id, flags = parts
    if len(version) != 2 or not _is_hex(version) or version.lower() == "ff":
        return None
    if len(trace_id) != 32 or not _is_hex(trace_id) or set(trace_id) == {"0"}:
        return None
    if len(span_id) != 16 or not _is_hex(span_id) or set(span_id) == {"0"}:
        return None
    if len(flags) != 2 or not _is_hex(flags):
        return None
    return TraceContext(
        trace_id.lower(), span_id.lower(), sampled=bool(int(flags, 16) & 1)
    )


@dataclass
class Span:
    name: str
    start_ms: float
    duration_ms: float
    parent: str | None = None
    meta: dict = field(default_factory=dict)
    span_id: str = ""
    parent_id: str | None = None

    def to_dict(self) -> dict:
        """The pinned ``debug.timings`` wire shape — ids deliberately absent."""
        payload = {
            "name": self.name,
            "start_ms": round(self.start_ms, 3),
            "duration_ms": round(self.duration_ms, 3),
        }
        if self.parent is not None:
            payload["parent"] = self.parent
        if self.meta:
            payload["meta"] = self.meta
        return payload

    def to_full_dict(self) -> dict:
        """The trace-store shape: the pinned fields plus span identity."""
        payload = self.to_dict()
        payload["span_id"] = self.span_id
        payload["parent_id"] = self.parent_id
        return payload


class Trace:
    """Per-request span collector.  Cheap to build, safe to share for writes."""

    __slots__ = (
        "request_id",
        "trace_id",
        "parent_span_id",
        "span_id",
        "sampled",
        "t0",
        "_lock",
        "_spans",
        "_stack",
        "_annotations",
    )

    def __init__(
        self,
        request_id: str | None = None,
        trace_id: str | None = None,
        parent_span_id: str | None = None,
    ):
        self.request_id = request_id
        #: pass ``trace_id``/``parent_span_id`` to continue a remote context
        #: (a worker picking up the gateway's traceparent).
        self.trace_id = trace_id if trace_id is not None else new_trace_id()
        self.parent_span_id = parent_span_id
        #: the trace's own synthetic root id — the propagation fallback when
        #: no span is open on the activating thread.
        self.span_id = new_span_id()
        #: whether head sampling selected this trace (set by its creator).
        self.sampled = False
        self.t0 = time.perf_counter()
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        # Open (name, span_id) pairs for nesting; only the activating
        # thread touches it.
        self._stack: list[tuple[str, str]] = []
        self._annotations: dict = {}

    def now_ms(self) -> float:
        return (time.perf_counter() - self.t0) * 1000.0

    def open_span_id(self) -> str:
        """The innermost open span's id (activating thread only), falling
        back to the trace's synthetic root id."""
        return self._stack[-1][1] if self._stack else self.span_id

    def context(self) -> TraceContext:
        """The propagatable identity at the current nesting point
        (activating thread only — captures ``open_span_id``)."""
        return TraceContext(self.trace_id, self.open_span_id(), True, self)

    def annotate(self, **attributes) -> None:
        """Attach trace-level attributes (e.g. the routed method) read back
        when the finished trace is offered to a collector."""
        with self._lock:
            self._annotations.update(attributes)

    def annotations(self) -> dict:
        with self._lock:
            return dict(self._annotations)

    def add_span(
        self,
        name: str,
        start_ms: float,
        duration_ms: float,
        parent: str | None = None,
        span_id: str | None = None,
        parent_id: str | None = None,
        **meta,
    ) -> None:
        """Record a finished span (thread-safe; usable from worker threads)."""
        entry = Span(
            name,
            start_ms,
            duration_ms,
            parent=parent,
            meta=dict(meta),
            span_id=span_id if span_id is not None else new_span_id(),
            parent_id=parent_id,
        )
        with self._lock:
            self._spans.append(entry)

    def graft(
        self,
        other: "Trace",
        parent: str | None = None,
        parent_id: str | None = None,
    ) -> None:
        """Copy another trace's spans onto this one, re-based onto this
        trace's clock; orphans (no parent of their own) are re-parented
        under ``parent``/``parent_id`` (used to surface a shared
        batch-execution trace inside each caller's trace)."""
        offset_ms = (other.t0 - self.t0) * 1000.0
        with other._lock:
            copied = list(other._spans)
        with self._lock:
            for entry in copied:
                self._spans.append(
                    Span(
                        entry.name,
                        entry.start_ms + offset_ms,
                        entry.duration_ms,
                        parent=entry.parent if entry.parent is not None else parent,
                        meta=dict(entry.meta),
                        span_id=entry.span_id or new_span_id(),
                        parent_id=(
                            entry.parent_id
                            if entry.parent_id is not None
                            else parent_id
                        ),
                    )
                )

    def graft_remote(
        self,
        spans: list[dict],
        base_ms: float,
        parent: str | None = None,
        parent_id: str | None = None,
    ) -> None:
        """Graft serialized spans from a remote hop (a worker's
        :data:`TRACE_SPANS_HEADER` payload), shifting their start offsets by
        ``base_ms`` — the local clock offset of the remote call — and hanging
        orphans under ``parent``/``parent_id``.  Malformed entries are
        skipped; tracing must never fail a request."""
        with self._lock:
            for raw in spans:
                try:
                    entry = Span(
                        str(raw["name"]),
                        base_ms + float(raw["start_ms"]),
                        float(raw["duration_ms"]),
                        parent=raw.get("parent", parent),
                        meta=dict(raw.get("meta") or {}),
                        span_id=str(raw.get("span_id") or new_span_id()),
                        parent_id=raw.get("parent_id") or parent_id,
                    )
                except (KeyError, TypeError, ValueError):
                    continue
                self._spans.append(entry)

    def spans(self) -> list[Span]:
        with self._lock:
            return list(self._spans)

    def to_list(self) -> list[dict]:
        spans = self.spans()
        spans.sort(key=lambda entry: entry.start_ms)
        return [entry.to_dict() for entry in spans]

    def to_span_dicts(self) -> list[dict]:
        """The trace-store serialization: id-bearing span dicts by start."""
        spans = self.spans()
        spans.sort(key=lambda entry: entry.start_ms)
        return [entry.to_full_dict() for entry in spans]


def current_trace() -> Trace | None:
    return _TRACE.get()


def current_context() -> TraceContext | None:
    """The propagatable trace identity for the calling context: the active
    trace's live nesting point when one is activated here, else whatever a
    :class:`propagation_scope` bound (fan-out worker threads)."""
    trace = _TRACE.get()
    if trace is not None:
        return trace.context()
    return _PROPAGATION.get()


@contextlib.contextmanager
def activate(trace: Trace | None):
    """Make ``trace`` the active trace for the calling context."""
    token = _TRACE.set(trace)
    try:
        yield trace
    finally:
        _TRACE.reset(token)


class propagation_scope:  # noqa: N801 - context-manager used like a function
    """Bind a captured :class:`TraceContext` for the calling context.

    Fan-out code (gateway scatter legs, batch items) captures
    :func:`current_context` on the request thread and enters this scope on
    the worker thread — the trace itself is *not* activated there, so the
    single-threaded ``_stack`` invariant holds, but forwarding code can
    still build a ``traceparent`` and graft remote spans through the
    context's thread-safe ``trace`` reference.
    """

    __slots__ = ("_context", "_token")

    def __init__(self, context: TraceContext | None):
        self._context = context

    def __enter__(self) -> TraceContext | None:
        self._token = _PROPAGATION.set(self._context)
        return self._context

    def __exit__(self, *_exc_info) -> None:
        _PROPAGATION.reset(self._token)


@contextlib.contextmanager
def span(name: str, **meta):
    """Record a span on the active trace; a no-op when tracing is off.

    Nesting is inferred from the activating thread's open-span stack, so

        with span("batch"):
            with span("execute"): ...

    records ``execute`` with ``parent="batch"`` — and, since every open
    span is assigned a ``span_id`` on entry, with ``parent_id`` pointing at
    that *specific* ``batch`` span, which keeps duplicate sibling names
    unambiguous.
    """
    trace = _TRACE.get()
    if trace is None:
        yield None
        return
    parent, parent_id = trace._stack[-1] if trace._stack else (None, None)
    span_id = new_span_id()
    trace._stack.append((name, span_id))
    start_ms = trace.now_ms()
    started = time.perf_counter()
    try:
        yield trace
    finally:
        duration_ms = (time.perf_counter() - started) * 1000.0
        trace._stack.pop()
        trace.add_span(
            name,
            start_ms,
            duration_ms,
            parent=parent,
            span_id=span_id,
            parent_id=parent_id,
            **meta,
        )


def current_request_id() -> str | None:
    return _REQUEST_ID.get()


@contextlib.contextmanager
def request_scope(request_id: str | None):
    """Bind the request id for the calling context (handler-entry scope)."""
    token = _REQUEST_ID.set(request_id)
    try:
        yield request_id
    finally:
        _REQUEST_ID.reset(token)


def current_tenant() -> str | None:
    """The tenant id the front door resolved for this request, if any."""
    return _TENANT.get()


class tenant_scope:  # noqa: N801 - context-manager used like a function
    """Bind the resolved tenant id for the calling context.

    Entered by the HTTP handler (or cluster gateway) right after the gate
    admits a request, next to :func:`request_scope` — so per-tenant metric
    labels, access-log attribution, and worker forwarding all read it via
    :func:`current_tenant` without plumbing.  ContextVars do not cross
    thread-pool boundaries; fan-out code (batch items, gateway scatter)
    must capture the tenant and re-enter this scope on the worker thread,
    exactly as it already re-binds the request id.

    A plain class, not ``@contextmanager``: this sits on the per-request
    hot path and the generator protocol costs ~1us per entry that a
    ``__slots__`` object does not.
    """

    __slots__ = ("_tenant_id", "_token")

    def __init__(self, tenant_id: str | None):
        self._tenant_id = tenant_id

    def __enter__(self) -> str | None:
        self._token = _TENANT.set(self._tenant_id)
        return self._tenant_id

    def __exit__(self, *_exc_info) -> None:
        _TENANT.reset(self._token)
