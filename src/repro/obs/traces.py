"""A searchable in-memory store of completed traces.

:class:`TraceCollector` is the worker- and gateway-side backing store for
``GET /v1/traces``: a bounded ring buffer of finished request traces with
**head sampling** (a coin flip per request against ``sample_rate``, taken
before the trace is built so a rate of 0.0 keeps the hot path trace-free)
plus **always-keep** rules — a trace that exists anyway (slow-query
tracing, ``include_timings``) is retained when the request ran slower than
the slow threshold or errored, regardless of the sampling verdict.

The ring is deliberately small (default 256 traces): this is a flight
recorder for debugging tail latency, not a durable span warehouse.  For
off-box retention the collector can hand its kept traces to a push
exporter (see :mod:`repro.obs.export`) as OTLP-flavored JSON spans.

Thread safety: ``offer`` and the query surface take one lock; records are
plain dicts snapshot at offer time, so readers never see a trace mutate.
"""

from __future__ import annotations

import random
import threading
import time
from collections import OrderedDict

from repro.obs.trace import Trace

#: bound on one query() response, whatever ``limit`` the caller asked for.
MAX_QUERY_LIMIT = 200


class TraceCollector:
    """Bounded ring buffer of completed traces with head sampling."""

    def __init__(
        self,
        capacity: int = 256,
        sample_rate: float = 0.0,
        slow_ms: float | None = None,
        rng: random.Random | None = None,
        export: bool = False,
        export_capacity: int = 256,
    ):
        self.capacity = max(1, int(capacity))
        self.sample_rate = min(1.0, max(0.0, float(sample_rate)))
        self.slow_ms = slow_ms
        self._rng = rng if rng is not None else random.Random()
        self._lock = threading.Lock()
        #: trace_id -> record, insertion-ordered (oldest first) so eviction
        #: pops from the left; doubles as the O(1) id index.
        self._records: OrderedDict[str, dict] = OrderedDict()
        #: records kept since the last exporter drain, bounded separately so
        #: a sink outage cannot grow memory; only fed when span export is on.
        self.export_enabled = bool(export)
        self._export_queue: list[dict] = []
        self._export_capacity = max(1, int(export_capacity))
        self._sampled = 0
        self._kept = 0
        self._evicted = 0
        self._discarded = 0
        self._export_dropped = 0

    # -- head sampling ---------------------------------------------------------------
    def sample(self) -> bool:
        """One head-sampling coin flip.  Deterministic under a seeded RNG:
        the k-th call returns the same verdict for the same seed and rate."""
        if self.sample_rate <= 0.0:
            return False
        if self.sample_rate >= 1.0:
            with self._lock:
                self._sampled += 1
            return True
        with self._lock:
            verdict = self._rng.random() < self.sample_rate
            if verdict:
                self._sampled += 1
        return verdict

    # -- ingestion -------------------------------------------------------------------
    def offer(
        self,
        trace: Trace,
        duration_ms: float,
        method: str | None = None,
        tenant: str | None = None,
        error: str | None = None,
        sampled: bool = False,
    ) -> bool:
        """Offer a finished trace; keep it when head sampling selected it or
        an always-keep rule (slow, errored) applies.  Returns whether the
        trace was stored."""
        reason = None
        if sampled:
            reason = "sampled"
        elif error is not None:
            reason = "error"
        elif self.slow_ms is not None and duration_ms >= self.slow_ms:
            reason = "slow"
        if reason is None:
            with self._lock:
                self._discarded += 1
            return False
        record = {
            "trace_id": trace.trace_id,
            "request_id": trace.request_id,
            "tenant": tenant,
            "method": method,
            "duration_ms": round(duration_ms, 3),
            "error": error,
            "kept": reason,
            "unix_ms": int(time.time() * 1000),
            "spans": trace.to_span_dicts(),
        }
        with self._lock:
            self._kept += 1
            # A re-offered id (gateway graft after a worker stored the same
            # trace id) replaces the older record in place.
            self._records.pop(record["trace_id"], None)
            self._records[record["trace_id"]] = record
            while len(self._records) > self.capacity:
                self._records.popitem(last=False)
                self._evicted += 1
            if self.export_enabled:
                self._export_queue.append(record)
                overflow = len(self._export_queue) - self._export_capacity
                if overflow > 0:
                    del self._export_queue[:overflow]
                    self._export_dropped += overflow
        return True

    # -- query surface ---------------------------------------------------------------
    def get(self, trace_id: str) -> dict | None:
        with self._lock:
            record = self._records.get(trace_id)
            return dict(record) if record is not None else None

    def query(
        self,
        tenant: str | None = None,
        method: str | None = None,
        min_duration_ms: float | None = None,
        error: bool | None = None,
        limit: int = 50,
    ) -> list[dict]:
        """Newest-first matching trace summaries (spans elided — fetch the
        full tree via :meth:`get` / ``GET /v1/traces/<trace_id>``)."""
        limit = max(1, min(int(limit), MAX_QUERY_LIMIT))
        with self._lock:
            records = list(self._records.values())
        matched: list[dict] = []
        for record in reversed(records):
            if tenant is not None and record["tenant"] != tenant:
                continue
            if method is not None and record["method"] != method:
                continue
            if (
                min_duration_ms is not None
                and record["duration_ms"] < min_duration_ms
            ):
                continue
            if error is not None and (record["error"] is not None) != error:
                continue
            summary = {
                key: value for key, value in record.items() if key != "spans"
            }
            summary["span_count"] = len(record["spans"])
            matched.append(summary)
            if len(matched) >= limit:
                break
        return matched

    # -- export ----------------------------------------------------------------------
    def drain_export(self) -> list[dict]:
        """Hand the records kept since the last drain to a push exporter."""
        with self._lock:
            pending, self._export_queue = self._export_queue, []
        return pending

    def stats(self) -> dict:
        with self._lock:
            return {
                "capacity": self.capacity,
                "sample_rate": self.sample_rate,
                "stored": len(self._records),
                "kept": self._kept,
                "sampled": self._sampled,
                "discarded": self._discarded,
                "evicted": self._evicted,
                "export_dropped": self._export_dropped,
            }
