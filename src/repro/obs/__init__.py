"""repro.obs — unified telemetry: metrics, tracing, export, progress, usage.

This package is the one place serving-layer counters live.  Components
expose :class:`~repro.obs.metrics.MetricsRegistry` instruments instead of
hand-rolled ``self._stats = {}`` dicts (a tier-1 lint test enforces this),
per-request stage timings ride the :mod:`~repro.obs.trace` ContextVar,
completed traces land in a searchable :class:`~repro.obs.traces.TraceCollector`
ring (served as ``GET /v1/traces``), push exporters
(:mod:`~repro.obs.export`) ship the registry — and optionally kept trace
spans — to external statsd/OTLP collectors in the background, fit jobs
report fractional progress through
:class:`~repro.obs.progress.ProgressReporter`, and per-tenant
compute-seconds accumulate in a :class:`~repro.obs.usage.UsageMeter` for
billing-grade accounting.
"""

from repro.obs.export import (
    EXPORTER_KINDS,
    JsonHttpExporter,
    PushExporter,
    StatsdExporter,
    build_exporter,
    spans_document,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    PROMETHEUS_CONTENT_TYPE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    merge_bucket_lists,
    percentile_from_buckets,
)
from repro.obs.progress import PHASE_WINDOWS, ProgressReporter, phase_window
from repro.obs.slowlog import SlowQueryLog, log_slow_query, slow_query_logger
from repro.obs.trace import (
    TRACE_ID_HEADER,
    TRACE_SPANS_HEADER,
    TRACEPARENT_HEADER,
    Trace,
    TraceContext,
    activate,
    current_context,
    current_request_id,
    current_tenant,
    current_trace,
    format_traceparent,
    new_span_id,
    new_trace_id,
    parse_traceparent,
    propagation_scope,
    request_scope,
    span,
    tenant_scope,
)
from repro.obs.traces import TraceCollector
from repro.obs.usage import (
    ANONYMOUS_TENANT,
    MAX_TENANTS,
    OVERFLOW_TENANT,
    UsageMeter,
    read_ledger,
)

__all__ = [
    "ANONYMOUS_TENANT",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "EXPORTER_KINDS",
    "MAX_TENANTS",
    "OVERFLOW_TENANT",
    "PHASE_WINDOWS",
    "PROMETHEUS_CONTENT_TYPE",
    "TRACEPARENT_HEADER",
    "TRACE_ID_HEADER",
    "TRACE_SPANS_HEADER",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonHttpExporter",
    "MetricsRegistry",
    "ProgressReporter",
    "PushExporter",
    "SlowQueryLog",
    "StatsdExporter",
    "Trace",
    "TraceCollector",
    "TraceContext",
    "UsageMeter",
    "activate",
    "build_exporter",
    "current_context",
    "current_request_id",
    "current_tenant",
    "current_trace",
    "default_registry",
    "format_traceparent",
    "log_slow_query",
    "merge_bucket_lists",
    "new_span_id",
    "new_trace_id",
    "parse_traceparent",
    "percentile_from_buckets",
    "phase_window",
    "propagation_scope",
    "read_ledger",
    "request_scope",
    "slow_query_logger",
    "span",
    "spans_document",
    "tenant_scope",
]
