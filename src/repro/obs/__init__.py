"""repro.obs — unified telemetry: metrics, tracing, export, progress.

This package is the one place serving-layer counters live.  Components
expose :class:`~repro.obs.metrics.MetricsRegistry` instruments instead of
hand-rolled ``self._stats = {}`` dicts (a tier-1 lint test enforces this),
per-request stage timings ride the :mod:`~repro.obs.trace` ContextVar,
push exporters (:mod:`~repro.obs.export`) ship the registry to external
statsd/OTLP collectors in the background, and fit jobs report fractional
progress through :class:`~repro.obs.progress.ProgressReporter`.
"""

from repro.obs.export import (
    EXPORTER_KINDS,
    JsonHttpExporter,
    PushExporter,
    StatsdExporter,
    build_exporter,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    PROMETHEUS_CONTENT_TYPE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    merge_bucket_lists,
    percentile_from_buckets,
)
from repro.obs.progress import PHASE_WINDOWS, ProgressReporter, phase_window
from repro.obs.slowlog import SlowQueryLog, log_slow_query, slow_query_logger
from repro.obs.trace import (
    Trace,
    activate,
    current_request_id,
    current_tenant,
    current_trace,
    request_scope,
    span,
    tenant_scope,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_MS",
    "EXPORTER_KINDS",
    "PHASE_WINDOWS",
    "PROMETHEUS_CONTENT_TYPE",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonHttpExporter",
    "MetricsRegistry",
    "ProgressReporter",
    "PushExporter",
    "SlowQueryLog",
    "StatsdExporter",
    "Trace",
    "activate",
    "build_exporter",
    "current_request_id",
    "current_tenant",
    "current_trace",
    "default_registry",
    "log_slow_query",
    "merge_bucket_lists",
    "percentile_from_buckets",
    "phase_window",
    "request_scope",
    "slow_query_logger",
    "span",
    "tenant_scope",
]
