"""repro.obs — unified telemetry: metrics registry, tracing, slow-query log.

This package is the one place serving-layer counters live.  Components
expose :class:`~repro.obs.metrics.MetricsRegistry` instruments instead of
hand-rolled ``self._stats = {}`` dicts (a tier-1 lint test enforces this),
and per-request stage timings ride the :mod:`~repro.obs.trace` ContextVar.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    PROMETHEUS_CONTENT_TYPE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    merge_bucket_lists,
    percentile_from_buckets,
)
from repro.obs.slowlog import log_slow_query, slow_query_logger
from repro.obs.trace import (
    Trace,
    activate,
    current_request_id,
    current_trace,
    request_scope,
    span,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_MS",
    "PROMETHEUS_CONTENT_TYPE",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Trace",
    "activate",
    "current_request_id",
    "current_trace",
    "default_registry",
    "log_slow_query",
    "merge_bucket_lists",
    "percentile_from_buckets",
    "request_scope",
    "slow_query_logger",
    "span",
]
