"""Terminal renderer for the gateway dashboard (`repro cluster top`).

Pure function from the ``GET /v1/dashboard`` payload to a fixed-width
table, so the CLI loop stays trivial and tests can golden-check the
rendering without a terminal.
"""

from __future__ import annotations


def _fmt_ms(value) -> str:
    try:
        value = float(value)
    except (TypeError, ValueError):
        return "-"
    if value >= 1000:
        return f"{value / 1000:.2f}s"
    return f"{value:.1f}ms"


def _fmt_rate(value) -> str:
    try:
        return f"{float(value) * 100:.0f}%"
    except (TypeError, ValueError):
        return "-"


def _fmt_cost(value) -> str:
    """Compute-seconds for the tenants table's COST column."""
    try:
        return f"{float(value):.3f}"
    except (TypeError, ValueError):
        return "-"


#: character cells in a fit-job progress bar.
PROGRESS_BAR_WIDTH = 10


def _fmt_job(job: dict) -> str:
    """``method:phase`` plus a progress bar when the job reports one."""
    text = f"{job.get('method', '?')}:{job.get('phase') or job.get('status', '?')}"
    progress = job.get("progress")
    if not isinstance(progress, dict):
        return text
    try:
        fraction = min(max(float(progress.get("fraction")), 0.0), 1.0)
    except (TypeError, ValueError):
        return text
    filled = int(round(fraction * PROGRESS_BAR_WIDTH))
    bar = "=" * filled + "-" * (PROGRESS_BAR_WIDTH - filled)
    text += f" [{bar}] {fraction * 100:.0f}%"
    epoch, total = progress.get("epoch"), progress.get("total_epochs")
    if epoch is not None and total is not None:
        text += f" (ep {epoch}/{total})"
    return text


def render_dashboard(data: dict) -> str:
    """Render one refresh frame of the cluster dashboard."""
    fleet = data.get("fleet", {})
    cluster = data.get("cluster", {})
    workers = data.get("workers", {})
    gateway = data.get("gateway", {})

    lines: list[str] = []
    status = str(fleet.get("status", "unknown")).upper()
    lines.append(
        f"repro cluster top — fleet {status} "
        f"({fleet.get('healthy_workers', '?')}/{fleet.get('total_workers', '?')} workers healthy)"
    )
    latency = cluster.get("latency_ms", {})
    lines.append(
        "cluster: "
        f"requests={cluster.get('requests', 0)} "
        f"errors={cluster.get('errors', 0)} "
        f"cache_hit={_fmt_rate(cluster.get('cache_hit_rate'))} "
        f"p50={_fmt_ms(latency.get('p50'))} "
        f"p90={_fmt_ms(latency.get('p90'))} "
        f"p99={_fmt_ms(latency.get('p99'))}"
    )
    ann = cluster.get("ann") or {}
    queries = ann.get("queries", 0) or 0
    if queries:
        # probed-retrieval hot path: how much of the fleet's expand traffic
        # ran on the ANN shortlist, and how often it fell back to exact.
        lines.append(
            "ann: "
            f"queries={queries} "
            f"probes/q={ann.get('probes', 0) / queries:.1f} "
            f"shortlist/q={ann.get('shortlisted', 0) / queries:.0f} "
            f"exact_fallbacks={ann.get('exact_fallbacks', 0)}"
        )
    gateway_line = (
        "gateway: "
        f"proxied={gateway.get('proxied', 0)} "
        f"failovers={gateway.get('failovers', 0)} "
        f"backend_errors={gateway.get('backend_errors', 0)} "
        f"sidelined={len(gateway.get('sidelined', []) or [])}"
    )
    gateway_cache = gateway.get("cache")
    if isinstance(gateway_cache, dict):
        gateway_line += f" cache_hit={_fmt_rate(gateway_cache.get('hit_rate'))}"
    lines.append(gateway_line)
    lines.append("")

    header = (
        f"{'WORKER':<12} {'STATE':<6} {'REQS':>7} {'ERRS':>6} {'CACHE':>6} "
        f"{'P50':>9} {'P99':>9} {'SUBS':>5} {'FITTED':<18} FIT JOBS"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for worker_id in sorted(workers):
        shard = workers[worker_id] or {}
        healthy = shard.get("healthy")
        state = "up" if healthy else "DOWN"
        shard_latency = shard.get("latency_ms", {}) or {}
        fitted = ",".join(shard.get("fitted", []) or []) or "-"
        jobs = shard.get("fit_jobs", []) or []
        job_text = " ".join(_fmt_job(job) for job in jobs) or "-"
        lines.append(
            f"{worker_id:<12} {state:<6} "
            f"{shard.get('requests', 0) if healthy else '-':>7} "
            f"{shard.get('errors', 0) if healthy else '-':>6} "
            f"{_fmt_rate(shard.get('cache_hit_rate')) if healthy else '-':>6} "
            f"{_fmt_ms(shard_latency.get('p50')) if healthy else '-':>9} "
            f"{_fmt_ms(shard_latency.get('p99')) if healthy else '-':>9} "
            f"{shard.get('substrates_resident', 0) if healthy else '-':>5} "
            f"{fitted[:18]:<18} {job_text}"
        )

    tenants = data.get("tenants") or []
    if tenants:
        lines.append("")
        # the COST column appears once any worker reports usage metering.
        with_cost = any("compute_seconds" in (row or {}) for row in tenants)
        tenant_header = f"{'TENANT':<24} {'REQS':>8} {'THROTTLED':>10}"
        if with_cost:
            tenant_header += f" {'COST(s)':>10}"
        lines.append(tenant_header)
        lines.append("-" * len(tenant_header))
        for row in tenants:
            line = (
                f"{str(row.get('tenant', '?'))[:24]:<24} "
                f"{row.get('requests', 0):>8} "
                f"{row.get('throttled', 0):>10}"
            )
            if with_cost:
                line += f" {_fmt_cost(row.get('compute_seconds')):>10}"
            lines.append(line)
    return "\n".join(lines)
