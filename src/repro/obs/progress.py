"""Fit-progress reporting: coarse phases plus fine-grained fractions.

A fit job used to report only which *phase* it was in (``restoring`` /
``fitting_substrates`` / ``training`` / ``publishing``); a multi-minute
encoder or LM substrate fit was a single opaque ``fitting_substrates``.
:class:`ProgressReporter` adds a second channel: the training loops in
:mod:`repro.lm` call :meth:`ProgressReporter.step` with how far through
their work they are (0.0–1.0, optionally with an epoch counter), and the
job manager folds phase + fraction into one monotonically increasing
``FitJob.progress`` fraction using the :data:`PHASE_WINDOWS` weights.

The reporter is deliberately forgiving: every old call site that passed a
plain ``Callable[[str], None]`` phase callback still works via
:meth:`ProgressReporter.adapt`, and a ``None`` sink costs one attribute
check per report.
"""

from __future__ import annotations

from typing import Callable

#: each phase's slice of the overall 0..1 job progress.  Substrate fits
#: dominate a cold fit's wall time, so they own most of the bar.
PHASE_WINDOWS: dict[str, tuple[float, float]] = {
    "restoring": (0.0, 0.05),
    "fitting_substrates": (0.05, 0.65),
    "training": (0.65, 0.95),
    "publishing": (0.95, 1.0),
}


def phase_window(phase: str | None) -> tuple[float, float]:
    """The overall-progress window a phase-local fraction maps into."""
    if phase is None:
        return (0.0, 1.0)
    return PHASE_WINDOWS.get(phase, (0.0, 1.0))


class ProgressReporter:
    """Forwards phase transitions and step fractions to optional sinks.

    ``on_phase(name)`` fires on each phase transition; ``on_step(fraction,
    epoch, total_epochs)`` fires as the current phase's work advances,
    with ``fraction`` clamped to [0, 1].  Either sink may be ``None``.
    """

    __slots__ = ("on_phase", "on_step")

    def __init__(
        self,
        on_phase: Callable[[str], None] | None = None,
        on_step: "Callable[[float, int | None, int | None], None] | None" = None,
    ):
        self.on_phase = on_phase
        self.on_step = on_step

    def phase(self, name: str) -> None:
        if self.on_phase is not None:
            self.on_phase(name)

    def step(
        self,
        fraction: float,
        epoch: int | None = None,
        total_epochs: int | None = None,
    ) -> None:
        if self.on_step is not None:
            self.on_step(min(max(float(fraction), 0.0), 1.0), epoch, total_epochs)

    def subrange(self, start: float, end: float) -> "ProgressReporter":
        """A child whose [0, 1] steps map onto [start, end] of this reporter.

        Lets a parent hand each of K substrate fits its own slice of the
        phase, so the overall fraction keeps moving forward as the fits
        complete in sequence.  Phase transitions still go to the parent.
        """
        span = end - start

        def forward(fraction: float, epoch: int | None, total: int | None) -> None:
            self.step(start + span * fraction, epoch, total)

        return ProgressReporter(on_phase=self.on_phase, on_step=forward)

    @staticmethod
    def adapt(progress) -> "ProgressReporter":
        """Normalize any accepted ``progress`` argument into a reporter.

        ``None`` becomes a shared no-op, a :class:`ProgressReporter`
        passes through, and a plain callable — the pre-progress phase
        callback protocol — becomes a phase-only reporter, so existing
        callers keep working unchanged.
        """
        if progress is None:
            return NULL_PROGRESS
        if isinstance(progress, ProgressReporter):
            return progress
        return ProgressReporter(on_phase=progress)


#: the shared do-nothing reporter (``ProgressReporter.adapt(None)``).
NULL_PROGRESS = ProgressReporter()
