"""The metrics registry: one telemetry substrate for every serving layer.

Before this module, each serving component (service, cache, batcher,
registry, substrate provider, gateway) kept its own ad-hoc counter ints
behind its own lock and exposed them through a hand-rolled ``stats()``
dict.  :class:`MetricsRegistry` replaces the five hand-rolled counter sets
with named, thread-safe instruments:

* :class:`Counter` — monotonically increasing totals (requests, hits, ...);
* :class:`Gauge` — point-in-time values (resident substrates, cache size);
* :class:`Histogram` — fixed-bucket latency distributions from which
  p50/p90/p99 are derived without storing individual samples.

Every instrument supports label sets (``counter.inc(method="retexpan")``)
with a per-family cardinality cap so a buggy caller cannot grow the
registry without bound.  The existing ``stats()`` endpoints stay wire-
compatible as *views* over the registry, and ``GET /v1/metrics`` renders
the whole registry in the Prometheus text exposition format (0.0.4).

Histograms built with ``exemplars=True`` additionally capture the current
request id (from :mod:`repro.obs.trace`) as a per-bucket exemplar —
bounded (one slot per bucket), latest-wins — rendered in the OpenMetrics
exemplar syntax (``... # {request_id="req-..."} value``) so an operator
can jump from a fat latency bucket straight to the matching slow-query
log entry.

A registry built with ``enabled=False`` hands out shared no-op
instruments — the mode the benchmark overhead guard measures the
uninstrumented baseline with.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Iterable, Mapping

from repro.obs.trace import current_request_id

#: default latency buckets in milliseconds (upper bounds; +Inf is implicit).
DEFAULT_LATENCY_BUCKETS_MS: tuple[float, ...] = (
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
    500.0, 1000.0, 2500.0, 5000.0, 10000.0, 30000.0,
)

#: maximum distinct label sets per family before new ones are dropped.
MAX_SERIES_PER_FAMILY = 64

#: content type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_VALID_NAME_CHARS = set("abcdefghijklmnopqrstuvwxyz0123456789_:")


def _label_key(labels: Mapping[str, str]) -> tuple[tuple[str, str], ...]:
    # The unlabeled and single-label cases are the serving hot path; keep
    # them free of the sort-a-generator machinery.
    if not labels:
        return ()
    if len(labels) == 1:
        for k, v in labels.items():
            return ((str(k), str(v)),)
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(key: tuple[tuple[str, str], ...]) -> str:
    if not key:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in key)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    # Prometheus accepts both; render counts without a trailing ``.0`` so
    # the golden test (and human eyes) see ``42`` rather than ``42.0``.
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_le(bound: float) -> str:
    if bound == float("inf"):
        return "+Inf"
    return _format_value(bound)


class _Instrument:
    """Shared plumbing of one metric family (name + per-label-set series)."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str = ""):
        self.name = name
        self.help = help_text
        self._lock = threading.Lock()
        self._series: dict[tuple[tuple[str, str], ...], float] = {}
        #: label sets refused once the family hit the cardinality cap.
        self.dropped_series = 0

    def _slot(self, labels: Mapping[str, str]):
        """The series key for ``labels``, or ``None`` once over the cap.

        Callers hold ``self._lock``."""
        key = _label_key(labels)
        if key not in self._series and len(self._series) >= MAX_SERIES_PER_FAMILY:
            self.dropped_series += 1
            return None
        return key

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._series.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum over every label set of the family."""
        with self._lock:
            return sum(self._series.values())

    def series(self) -> dict[tuple[tuple[str, str], ...], float]:
        with self._lock:
            return dict(self._series)


class _BoundCounter:
    """One pre-resolved (counter, label set) series for hot paths.

    Binding pays the label-key construction and cardinality check once;
    every ``inc`` after that is a lock plus one dict write.  The series is
    materialized at bind time, so it renders (as 0) before the first
    increment — same visibility rule as an unlabeled counter view.
    """

    __slots__ = ("_lock", "_series", "_key", "name")

    def __init__(self, counter: "Counter", key):
        self._lock = counter._lock
        self._series = counter._series
        self._key = key
        self.name = counter.name
        with self._lock:
            self._series.setdefault(key, 0.0)

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        with self._lock:
            self._series[self._key] += amount


class _BoundGauge:
    """One pre-resolved (gauge, label set) series for hot paths."""

    __slots__ = ("_lock", "_series", "_key", "name")

    def __init__(self, gauge: "Gauge", key):
        self._lock = gauge._lock
        self._series = gauge._series
        self._key = key
        self.name = gauge.name
        with self._lock:
            self._series.setdefault(key, 0.0)

    def set(self, value: float) -> None:
        with self._lock:
            self._series[self._key] = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._series[self._key] += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class _BoundHistogram:
    """One pre-resolved (histogram, label set) series for hot paths."""

    __slots__ = ("_lock", "_entry", "_bounds", "_exemplars", "name")

    def __init__(self, histogram: "Histogram", entry):
        self._lock = histogram._lock
        self._entry = entry
        self._bounds = histogram.bounds
        self._exemplars = histogram.exemplars
        self.name = histogram.name

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect_left(self._bounds, value)
        # the contextvar read happens outside the lock; it is the only
        # exemplar cost a request without an active request id pays.
        request_id = current_request_id() if self._exemplars else None
        with self._lock:
            entry = self._entry
            entry[0][index] += 1
            entry[1] += value
            entry[2] += 1
            if request_id is not None:
                entry[3][index] = (request_id, value)


class Counter(_Instrument):
    """A monotonically increasing total (optionally per label set)."""

    kind = "counter"

    def labels(self, **labels: str) -> _BoundCounter | "_NullInstrument":
        """A bound child for this label set; over the cap, a no-op."""
        with self._lock:
            key = self._slot(labels)
        if key is None:
            return _NULL_INSTRUMENT
        return _BoundCounter(self, key)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        key = _label_key(labels)
        series = self._series
        with self._lock:
            if key in series:
                series[key] += amount
            elif len(series) < MAX_SERIES_PER_FAMILY:
                series[key] = amount
            else:
                self.dropped_series += 1


class Gauge(_Instrument):
    """A point-in-time value that can move both ways."""

    kind = "gauge"

    def labels(self, **labels: str) -> _BoundGauge | "_NullInstrument":
        """A bound child for this label set; over the cap, a no-op."""
        with self._lock:
            key = self._slot(labels)
        if key is None:
            return _NULL_INSTRUMENT
        return _BoundGauge(self, key)

    def set(self, value: float, **labels: str) -> None:
        with self._lock:
            key = self._slot(labels)
            if key is None:
                return
            self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        with self._lock:
            key = self._slot(labels)
            if key is None:
                return
            self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def set_max(self, value: float, **labels: str) -> None:
        """Keep the maximum ever observed (atomic read-compare-set)."""
        with self._lock:
            key = self._slot(labels)
            if key is None:
                return
            current = self._series.get(key)
            if current is None or value > current:
                self._series[key] = float(value)


class Histogram(_Instrument):
    """A fixed-bucket distribution; percentiles derive from the buckets."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS_MS,
        exemplars: bool = False,
    ):
        super().__init__(name, help_text)
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {self.name} needs at least one bucket")
        #: finite upper bounds; the +Inf bucket is implicit (the last slot).
        self.bounds: tuple[float, ...] = tuple(bounds)
        #: capture the current request id per bucket (latest-wins).
        self.exemplars = exemplars
        #: label key -> [per-bucket counts incl. +Inf, sum, count] — plus a
        #: parallel per-bucket exemplar slot list when ``exemplars`` is on.
        self._hist: dict[tuple[tuple[str, str], ...], list] = {}

    def _new_entry(self) -> list:
        entry: list = [[0] * (len(self.bounds) + 1), 0.0, 0]
        if self.exemplars:
            entry.append([None] * (len(self.bounds) + 1))
        return entry

    def labels(self, **labels: str) -> _BoundHistogram | "_NullInstrument":
        """A bound child for this label set; over the cap, a no-op."""
        with self._lock:
            key = self._slot_hist(labels)
            if key is None:
                return _NULL_INSTRUMENT
            entry = self._hist[key]
        return _BoundHistogram(self, entry)

    def observe(self, value: float, **labels: str) -> None:
        value = float(value)
        key = _label_key(labels)
        # bisect: the first bound >= value is exactly the bucket whose
        # ``value <= le`` predicate holds; past-the-end lands in +Inf.
        index = bisect_left(self.bounds, value)
        request_id = current_request_id() if self.exemplars else None
        with self._lock:
            entry = self._hist.get(key)
            if entry is None:
                if len(self._hist) >= MAX_SERIES_PER_FAMILY:
                    self.dropped_series += 1
                    return
                entry = self._hist[key] = self._new_entry()
            entry[0][index] += 1
            entry[1] += value
            entry[2] += 1
            if request_id is not None:
                entry[3][index] = (request_id, value)

    def _slot_hist(self, labels: Mapping[str, str]):
        key = _label_key(labels)
        if key not in self._hist:
            if len(self._hist) >= MAX_SERIES_PER_FAMILY:
                self.dropped_series += 1
                return None
            self._hist[key] = self._new_entry()
        return key

    # -- reads -------------------------------------------------------------------
    def count(self, **labels: str) -> int:
        with self._lock:
            if labels:
                entry = self._hist.get(_label_key(labels))
                return entry[2] if entry is not None else 0
            return sum(entry[2] for entry in self._hist.values())

    def sum(self, **labels: str) -> float:
        with self._lock:
            if labels:
                entry = self._hist.get(_label_key(labels))
                return entry[1] if entry is not None else 0.0
            return sum(entry[1] for entry in self._hist.values())

    def merged(self) -> dict:
        """The family's distribution aggregated across every label set, as a
        JSON-able dict — this is what ``stats()`` views ship so a gateway can
        re-merge per-worker histograms and derive fleet-level percentiles."""
        with self._lock:
            counts = [0] * (len(self.bounds) + 1)
            total_sum, total_count = 0.0, 0
            for entry in self._hist.values():
                for index, count in enumerate(entry[0]):
                    counts[index] += count
                total_sum += entry[1]
                total_count += entry[2]
        cumulative, running = [], 0
        for index, bound in enumerate((*self.bounds, float("inf"))):
            running += counts[index]
            cumulative.append([_format_le(bound), running])
        return {"count": total_count, "sum": total_sum, "buckets": cumulative}

    def percentile(self, q: float, **labels: str) -> float:
        """The q-th percentile (0..100) from the bucketed counts.

        Linear interpolation inside the bucket that crosses the target rank;
        the +Inf bucket reports the largest finite bound (there is no upper
        edge to interpolate toward).
        """
        with self._lock:
            if labels:
                entry = self._hist.get(_label_key(labels))
                if entry is None:
                    return 0.0
                counts, _sum, total = list(entry[0]), entry[1], entry[2]
            else:
                counts = [0] * (len(self.bounds) + 1)
                total = 0
                for entry in self._hist.values():
                    for index, count in enumerate(entry[0]):
                        counts[index] += count
                    total += entry[2]
        return percentile_from_buckets(self.bounds, counts, total, q)

    def percentiles(self, qs: Iterable[float] = (50, 90, 99), **labels: str) -> dict:
        return {f"p{_format_value(q)}": self.percentile(q, **labels) for q in qs}


def percentile_from_buckets(
    bounds: tuple[float, ...], counts: list, total: int, q: float
) -> float:
    """Percentile of a bucketed distribution (counts per bucket incl. +Inf)."""
    if total <= 0:
        return 0.0
    target = (max(0.0, min(100.0, q)) / 100.0) * total
    cumulative = 0
    lower = 0.0
    for index, bound in enumerate((*bounds, float("inf"))):
        in_bucket = counts[index]
        if cumulative + in_bucket >= target and in_bucket > 0:
            if bound == float("inf"):
                return bounds[-1]
            fraction = (target - cumulative) / in_bucket
            return lower + (bound - lower) * fraction
        cumulative += in_bucket
        lower = bound if bound != float("inf") else lower
    return bounds[-1]


def merge_bucket_lists(payloads: Iterable[Mapping]) -> dict:
    """Merge several :meth:`Histogram.merged` payloads (e.g. one per worker)
    into one distribution with fleet-level percentiles.

    Workers running the same build share bucket bounds; a payload with a
    different shape is skipped rather than mis-merged.
    """
    merged_counts: dict[str, int] = {}
    order: list[str] = []
    total_count, total_sum = 0, 0.0
    for payload in payloads:
        buckets = payload.get("buckets")
        if not isinstance(buckets, list) or not buckets:
            continue
        les = [str(le) for le, _count in buckets]
        if order and les != order:
            continue
        if not order:
            order = les
        previous = 0
        for le, cumulative in buckets:
            merged_counts[str(le)] = (
                merged_counts.get(str(le), 0) + int(cumulative) - previous
            )
            previous = int(cumulative)
        total_count += int(payload.get("count", 0))
        total_sum += float(payload.get("sum", 0.0))
    if not order:
        return {"count": 0, "sum": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0}
    bounds = tuple(float("inf") if le == "+Inf" else float(le) for le in order)
    counts = [merged_counts[le] for le in order]
    finite = tuple(b for b in bounds if b != float("inf"))
    return {
        "count": total_count,
        "sum": total_sum,
        "p50": percentile_from_buckets(finite, counts, total_count, 50),
        "p90": percentile_from_buckets(finite, counts, total_count, 90),
        "p99": percentile_from_buckets(finite, counts, total_count, 99),
    }


class _NullInstrument:
    """A do-nothing instrument shared by every family of a disabled registry."""

    kind = "null"
    name = "null"
    help = ""
    dropped_series = 0
    bounds: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_MS
    exemplars = False

    def labels(self, **labels: str) -> "_NullInstrument":
        return self

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        pass

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        pass

    def set(self, value: float, **labels: str) -> None:
        pass

    def set_max(self, value: float, **labels: str) -> None:
        pass

    def observe(self, value: float, **labels: str) -> None:
        pass

    def value(self, **labels: str) -> float:
        return 0.0

    def total(self) -> float:
        return 0.0

    def count(self, **labels: str) -> int:
        return 0

    def sum(self, **labels: str) -> float:
        return 0.0

    def series(self) -> dict:
        return {}

    def merged(self) -> dict:
        return {"count": 0, "sum": 0.0, "buckets": []}

    def percentile(self, q: float, **labels: str) -> float:
        return 0.0

    def percentiles(self, qs: Iterable[float] = (50, 90, 99), **labels: str) -> dict:
        return {f"p{_format_value(q)}": 0.0 for q in qs}


_NULL_INSTRUMENT = _NullInstrument()


class _Timer:
    """Context manager observing elapsed milliseconds into a histogram."""

    __slots__ = ("_histogram", "_labels", "_started", "elapsed_ms")

    def __init__(self, histogram, labels: Mapping[str, str]):
        self._histogram = histogram
        self._labels = dict(labels)
        self._started = 0.0
        self.elapsed_ms = 0.0

    def __enter__(self) -> "_Timer":
        import time

        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        import time

        self.elapsed_ms = (time.perf_counter() - self._started) * 1000.0
        self._histogram.observe(self.elapsed_ms, **self._labels)


class MetricsRegistry:
    """Owns named metric families and renders them for exposition.

    One registry per serving process-facade (service or gateway); components
    that can also live standalone (cache, batcher, registry, provider)
    accept a registry and default to a private one so unit tests stay
    isolated.  ``enabled=False`` turns every instrument into a shared no-op
    (the benchmark baseline mode).
    """

    def __init__(
        self,
        enabled: bool = True,
        const_labels: Mapping[str, str] | None = None,
    ):
        self.enabled = enabled
        #: labels stamped on every rendered series (e.g. dataset fingerprint).
        self.const_labels: dict[str, str] = dict(const_labels or {})
        self._lock = threading.Lock()
        self._families: dict[str, _Instrument] = {}

    # -- family accessors ----------------------------------------------------------
    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._family(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._family(Gauge, name, help_text)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS_MS,
        exemplars: bool = False,
    ) -> Histogram:
        if not self.enabled:
            return _NULL_INSTRUMENT  # type: ignore[return-value]
        with self._lock:
            family = self._families.get(name)
            if family is None:
                _check_name(name)
                family = Histogram(
                    name, help_text, buckets=buckets, exemplars=exemplars
                )
                self._families[name] = family
            elif not isinstance(family, Histogram):
                raise ValueError(
                    f"metric {name!r} is already registered as a {family.kind}"
                )
            return family

    def timed(self, name: str, help_text: str = "", **labels: str) -> _Timer:
        """``with registry.timed("repro_stage_ms", stage="x"): ...`` observes
        the block's wall time (ms) into the named histogram."""
        return _Timer(self.histogram(name, help_text), labels)

    def _family(self, cls, name: str, help_text: str):
        if not self.enabled:
            return _NULL_INSTRUMENT
        with self._lock:
            family = self._families.get(name)
            if family is None:
                _check_name(name)
                family = cls(name, help_text)
                self._families[name] = family
            elif type(family) is not cls:
                raise ValueError(
                    f"metric {name!r} is already registered as a {family.kind}"
                )
            return family

    # -- exposition ----------------------------------------------------------------
    def families(self) -> list[_Instrument]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def render_prometheus(self) -> str:
        """The whole registry in the Prometheus text exposition format."""
        const = _label_key(self.const_labels)
        lines: list[str] = []
        for family in self.families():
            lines.append(f"# HELP {family.name} {family.help}".rstrip())
            lines.append(f"# TYPE {family.name} {family.kind}")
            if isinstance(family, Histogram):
                self._render_histogram(family, const, lines)
                continue
            series = family.series()
            if not series:
                lines.append(f"{family.name}{_render_labels(const)} 0")
                continue
            for key in sorted(series):
                labels = _render_labels(const + key)
                lines.append(f"{family.name}{labels} {_format_value(series[key])}")
        return "\n".join(lines) + "\n"

    @staticmethod
    def _render_histogram(
        family: Histogram, const: tuple, lines: list[str]
    ) -> None:
        with family._lock:
            entries = {
                key: (list(v[0]), v[1], v[2], list(v[3]) if len(v) > 3 else None)
                for key, v in family._hist.items()
            }
        for key in sorted(entries):
            counts, series_sum, series_count, exemplars = entries[key]
            cumulative = 0
            for index, bound in enumerate((*family.bounds, float("inf"))):
                cumulative += counts[index]
                labels = _render_labels(const + key + (("le", _format_le(bound)),))
                line = f"{family.name}_bucket{labels} {cumulative}"
                if exemplars is not None and exemplars[index] is not None:
                    request_id, observed = exemplars[index]
                    line += (
                        f' # {{request_id="{_escape_label_value(request_id)}"}}'
                        f" {_format_value(observed)}"
                    )
                lines.append(line)
            labels = _render_labels(const + key)
            lines.append(f"{family.name}_sum{labels} {_format_value(series_sum)}")
            lines.append(f"{family.name}_count{labels} {series_count}")

    def export_snapshot(self) -> list[dict]:
        """Every live series as one flat list, for the push exporters.

        Counters and gauges ship ``{"name", "kind", "labels", "value"}``;
        histograms ship per-label-set ``{"name", "kind", "labels", "count",
        "sum", "buckets"}`` with cumulative ``[le, count]`` pairs.  Labels
        include the registry's const labels, so an exporter's output matches
        what ``/v1/metrics`` scrapes series-for-series.
        """
        const = _label_key(self.const_labels)
        series: list[dict] = []
        for family in self.families():
            if isinstance(family, Histogram):
                with family._lock:
                    entries = {
                        key: (list(v[0]), v[1], v[2])
                        for key, v in family._hist.items()
                    }
                for key in sorted(entries):
                    counts, series_sum, series_count = entries[key]
                    cumulative, running = [], 0
                    for index, bound in enumerate((*family.bounds, float("inf"))):
                        running += counts[index]
                        cumulative.append([_format_le(bound), running])
                    series.append(
                        {
                            "name": family.name,
                            "kind": "histogram",
                            "labels": dict(const + key),
                            "count": series_count,
                            "sum": series_sum,
                            "buckets": cumulative,
                        }
                    )
                continue
            for key, value in sorted(family.series().items()):
                series.append(
                    {
                        "name": family.name,
                        "kind": family.kind,
                        "labels": dict(const + key),
                        "value": value,
                    }
                )
        return series

    def snapshot(self) -> dict:
        """Debug view: family name -> {label tuple -> value} (counters/gauges)."""
        result: dict[str, dict] = {}
        for family in self.families():
            if isinstance(family, Histogram):
                result[family.name] = family.merged()
            else:
                result[family.name] = {
                    _render_labels(key) or "": value
                    for key, value in family.series().items()
                }
        return result


def _check_name(name: str) -> None:
    if not name or set(name.lower()) - _VALID_NAME_CHARS or name[0].isdigit():
        raise ValueError(f"invalid metric name {name!r}")


#: the process-global default registry (components may also own private ones).
_default_registry = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-global registry, for code without a service to hang off."""
    return _default_registry
