"""Push-style telemetry exporters: background shipping to external sinks.

``GET /v1/metrics`` covers Prometheus *pull*; this module is the *push*
side — a :class:`PushExporter` owns a daemon flusher thread that
periodically snapshots a :class:`~repro.obs.metrics.MetricsRegistry`,
diffs it against the previous flush, and ships the batch to an external
collector.  Two concrete sinks:

* :class:`StatsdExporter` — the statsd UDP line protocol.  Counters and
  histogram timings ship as **deltas since the last flush** (statsd sums
  them server-side), gauges ship their current value; label sets ride as
  dogstatsd-style ``|#key:value`` tags.
* :class:`JsonHttpExporter` — OTLP-flavored JSON batches POSTed to an
  HTTP endpoint (one ``resourceMetrics`` document per flush).

Failure handling is deliberately boring: a failed ship is retried a
bounded number of times with exponential backoff, then the batch is
**dropped and counted** — serving traffic is never blocked or buffered
without bound because a collector is down.  ``shutdown()`` stops the
thread and drains one final batch so short-lived processes still report.

The exporter registers its own health as ``obs_exporter_*`` self-metrics
(flushes, series shipped, retries, dropped series) in the same registry
it exports, so a dead sink is visible from the next successful flush and
from ``/v1/metrics``.
"""

from __future__ import annotations

import json
import logging
import socket
import threading
import urllib.error
import urllib.request
from typing import Mapping

from repro.obs.metrics import MetricsRegistry

logger = logging.getLogger("repro.obs.export")

#: flush-thread wake-up default (seconds).
DEFAULT_FLUSH_INTERVAL_SECONDS = 10.0

#: ship attempts per batch beyond the first (bounded retry).
DEFAULT_MAX_RETRIES = 3

#: first retry backoff; doubles per retry up to :data:`BACKOFF_CAP_SECONDS`.
DEFAULT_BACKOFF_SECONDS = 0.25
BACKOFF_CAP_SECONDS = 30.0

#: keep statsd datagrams under the conservative MTU payload.
MAX_DATAGRAM_BYTES = 1400

#: exporter kinds accepted by :func:`build_exporter` (and the CLI flag).
EXPORTER_KINDS = ("statsd", "json")


def _series_key(entry: Mapping) -> tuple:
    return (entry["name"], tuple(sorted(entry["labels"].items())))


class PushExporter:
    """Base class: snapshot → delta batch → ship, on a daemon thread.

    Subclasses implement :meth:`_ship` (raise on failure) and get retry,
    backoff, drop accounting, the flusher thread, and drain-on-shutdown
    for free.
    """

    kind = "push"
    #: whether the sink can carry trace spans (OTLP-JSON can, statsd cannot).
    supports_spans = False

    def __init__(
        self,
        registry: MetricsRegistry,
        interval_seconds: float = DEFAULT_FLUSH_INTERVAL_SECONDS,
        max_retries: int = DEFAULT_MAX_RETRIES,
        backoff_seconds: float = DEFAULT_BACKOFF_SECONDS,
    ):
        self.registry = registry
        #: optional zero-arg callable draining kept trace records (set by
        #: the service when span export is enabled; see TraceCollector).
        self.span_source = None
        self.interval_seconds = float(interval_seconds)
        self.max_retries = int(max_retries)
        self.backoff_seconds = float(backoff_seconds)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        #: previous flush's snapshot, keyed by (name, label items).
        self._last: dict[tuple, dict] = {}
        self._flush_lock = threading.Lock()
        self.last_error: str | None = None
        # Self-metrics live in the exported registry, so sink health ships
        # with the next flush and scrapes from /v1/metrics.
        self._flushes = registry.counter(
            "obs_exporter_flushes_total", "Successful exporter flushes."
        ).labels(sink=self.kind)
        self._shipped = registry.counter(
            "obs_exporter_series_shipped_total", "Series shipped to the sink."
        ).labels(sink=self.kind)
        self._retries = registry.counter(
            "obs_exporter_retries_total", "Ship attempts retried after a failure."
        ).labels(sink=self.kind)
        self._drops = registry.counter(
            "obs_exporter_dropped_series_total",
            "Series dropped after retries were exhausted.",
        ).labels(sink=self.kind)
        self._spans_shipped = registry.counter(
            "obs_exporter_spans_shipped_total",
            "Trace spans shipped to the sink.",
        ).labels(sink=self.kind)

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> "PushExporter":
        self._thread = threading.Thread(
            target=self._run, name=f"repro-exporter-{self.kind}", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval_seconds):
            try:
                self.run_once()
            except Exception:  # noqa: BLE001 - the flusher must survive
                logger.exception("exporter %s flush failed unexpectedly", self.kind)

    def shutdown(self) -> None:
        """Stop the flusher and drain one final batch (best effort)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        try:
            self.run_once()
        except Exception:  # noqa: BLE001 - drain is best effort
            logger.exception("exporter %s final drain failed", self.kind)
        self._close()

    def _close(self) -> None:
        """Release sink resources (sockets); subclass hook."""

    # -- flushing ----------------------------------------------------------------
    def run_once(self) -> int:
        """One flush: diff against the last snapshot, ship, account.

        Returns the number of series shipped (0 when nothing changed or
        the batch was dropped).  Thread-safe: the scheduled flusher and an
        explicit drain never interleave mid-diff.
        """
        with self._flush_lock:
            shipped = self._flush_metrics_locked()
            shipped += self._flush_spans_locked()
            return shipped

    def _flush_metrics_locked(self) -> int:
        snapshot = self.registry.export_snapshot()
        batch = self._build_batch(snapshot)
        # Whether the ship succeeds or the batch drops, the baseline
        # advances: a dead sink loses data (drop-and-count), it does
        # not buffer it without bound.
        self._last = {_series_key(entry): entry for entry in snapshot}
        if not batch:
            return 0
        if not self._ship_with_retries(batch):
            self._drops.inc(len(batch))
            return 0
        self._flushes.inc()
        self._shipped.inc(len(batch))
        return len(batch)

    def _flush_spans_locked(self) -> int:
        """Drain kept trace records from ``span_source`` and ship them as
        spans (sinks that support it); same drop-and-count discipline."""
        if self.span_source is None or not self.supports_spans:
            return 0
        records = self.span_source()
        if not records:
            return 0
        span_count = sum(len(record.get("spans", ())) for record in records)
        if not self._ship_with_retries(records, ship=self._ship_spans):
            self._drops.inc(len(records))
            return 0
        self._spans_shipped.inc(span_count)
        return len(records)

    def _ship_with_retries(self, batch: list[dict], ship=None) -> bool:
        ship = ship if ship is not None else self._ship
        delay = self.backoff_seconds
        for attempt in range(self.max_retries + 1):
            try:
                ship(batch)
            except Exception as exc:  # noqa: BLE001 - counted, not raised
                self.last_error = f"{type(exc).__name__}: {exc}"
                if attempt >= self.max_retries:
                    return False
                self._retries.inc()
                # during shutdown the stop event is set, so the backoff
                # waits collapse and the remaining retries run back-to-back.
                self._stop.wait(delay)
                delay = min(delay * 2.0, BACKOFF_CAP_SECONDS)
            else:
                self.last_error = None
                return True
        return False

    def _build_batch(self, snapshot: list[dict]) -> list[dict]:
        """Delta entries since the previous flush (always-ship gauges)."""
        batch: list[dict] = []
        for entry in snapshot:
            previous = self._last.get(_series_key(entry))
            if entry["kind"] == "counter":
                delta = entry["value"] - (previous["value"] if previous else 0.0)
                if delta > 0:
                    batch.append({**entry, "delta": delta})
            elif entry["kind"] == "gauge":
                batch.append(dict(entry))
            elif entry["kind"] == "histogram":
                delta_count = entry["count"] - (previous["count"] if previous else 0)
                delta_sum = entry["sum"] - (previous["sum"] if previous else 0.0)
                if delta_count > 0:
                    batch.append(
                        {**entry, "delta_count": delta_count, "delta_sum": delta_sum}
                    )
        return batch

    def _ship(self, batch: list[dict]) -> None:
        raise NotImplementedError

    def _ship_spans(self, records: list[dict]) -> None:
        raise NotImplementedError

    # -- introspection -----------------------------------------------------------
    def stats(self) -> dict:
        return {
            "sink": self.kind,
            "interval_seconds": self.interval_seconds,
            "last_error": self.last_error,
        }


class StatsdExporter(PushExporter):
    """Ships the registry over the statsd UDP line protocol.

    Counter deltas go out as ``name:delta|c``, gauges as ``name:value|g``,
    and each histogram's flush window as a mean timing ``name:mean|ms``
    plus a ``name.count:delta|c`` sample counter.  Label sets are encoded
    as dogstatsd ``|#key:value`` tags (servers that don't speak tags
    ignore the suffix).
    """

    kind = "statsd"

    def __init__(self, registry: MetricsRegistry, host: str, port: int, **kwargs):
        super().__init__(registry, **kwargs)
        self.address = (host, int(port))
        self._socket = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)

    def _ship(self, batch: list[dict]) -> None:
        lines: list[str] = []
        for entry in batch:
            tags = self._tags(entry["labels"])
            if entry["kind"] == "counter":
                lines.append(f"{entry['name']}:{_num(entry['delta'])}|c{tags}")
            elif entry["kind"] == "gauge":
                lines.append(f"{entry['name']}:{_num(entry['value'])}|g{tags}")
            else:  # histogram
                mean = entry["delta_sum"] / entry["delta_count"]
                lines.append(f"{entry['name']}:{_num(mean)}|ms{tags}")
                lines.append(
                    f"{entry['name']}.count:{_num(entry['delta_count'])}|c{tags}"
                )
        for datagram in self._pack(lines):
            self._socket.sendto(datagram, self.address)

    @staticmethod
    def _tags(labels: Mapping[str, str]) -> str:
        if not labels:
            return ""
        inner = ",".join(f"{k}:{v}" for k, v in sorted(labels.items()))
        return f"|#{inner}"

    @staticmethod
    def _pack(lines: list[str]) -> list[bytes]:
        """Newline-join lines into datagrams under the MTU budget."""
        datagrams: list[bytes] = []
        pending: list[bytes] = []
        size = 0
        for line in lines:
            encoded = line.encode("utf-8")
            if pending and size + 1 + len(encoded) > MAX_DATAGRAM_BYTES:
                datagrams.append(b"\n".join(pending))
                pending, size = [], 0
            pending.append(encoded)
            size += len(encoded) + 1
        if pending:
            datagrams.append(b"\n".join(pending))
        return datagrams

    def _close(self) -> None:
        self._socket.close()


class JsonHttpExporter(PushExporter):
    """POSTs OTLP-flavored JSON metric batches to an HTTP collector.

    One document per flush::

        {"resourceMetrics": [{"scopeMetrics": [{"scope": {"name": "repro"},
          "metrics": [{"name": ..., "sum"|"gauge"|"histogram": {...}}]}]}]}

    Counters carry the flush-window delta (``aggregationTemporality`` 1,
    the OTLP *delta* enum), gauges their current value, histograms the
    window's count/sum plus cumulative bucket counts.  Any non-2xx status
    or transport error counts as a failed ship.
    """

    kind = "json"
    supports_spans = True

    def __init__(self, registry: MetricsRegistry, url: str, timeout: float = 5.0, **kwargs):
        super().__init__(registry, **kwargs)
        self.url = url
        self.timeout = float(timeout)

    def _ship(self, batch: list[dict]) -> None:
        self._post(self._document(batch))

    def _ship_spans(self, records: list[dict]) -> None:
        self._post(spans_document(records))

    def _post(self, document: dict) -> None:
        body = json.dumps(document).encode("utf-8")
        request = urllib.request.Request(
            self.url, data=body, headers={"Content-Type": "application/json"}
        )
        with urllib.request.urlopen(request, timeout=self.timeout) as response:
            if not 200 <= response.status < 300:
                raise urllib.error.HTTPError(
                    self.url, response.status, "sink rejected batch", {}, None
                )

    @staticmethod
    def _document(batch: list[dict]) -> dict:
        metrics = []
        for entry in batch:
            attributes = [
                {"key": k, "value": {"stringValue": v}}
                for k, v in sorted(entry["labels"].items())
            ]
            if entry["kind"] == "counter":
                metrics.append(
                    {
                        "name": entry["name"],
                        "sum": {
                            "aggregationTemporality": 1,
                            "isMonotonic": True,
                            "dataPoints": [
                                {"attributes": attributes, "asDouble": entry["delta"]}
                            ],
                        },
                    }
                )
            elif entry["kind"] == "gauge":
                metrics.append(
                    {
                        "name": entry["name"],
                        "gauge": {
                            "dataPoints": [
                                {"attributes": attributes, "asDouble": entry["value"]}
                            ],
                        },
                    }
                )
            else:  # histogram
                metrics.append(
                    {
                        "name": entry["name"],
                        "histogram": {
                            "aggregationTemporality": 1,
                            "dataPoints": [
                                {
                                    "attributes": attributes,
                                    "count": entry["delta_count"],
                                    "sum": entry["delta_sum"],
                                    "bucketCounts": [
                                        count for _le, count in entry["buckets"]
                                    ],
                                    "explicitBounds": [
                                        float(le)
                                        for le, _count in entry["buckets"]
                                        if le != "+Inf"
                                    ],
                                }
                            ],
                        },
                    }
                )
        return {
            "resourceMetrics": [
                {
                    "scopeMetrics": [
                        {"scope": {"name": "repro"}, "metrics": metrics}
                    ]
                }
            ]
        }


def spans_document(records: list[dict]) -> dict:
    """OTLP-flavored ``resourceSpans`` JSON for kept trace records.

    Each record is a :class:`~repro.obs.traces.TraceCollector` entry; span
    offsets (milliseconds relative to the trace's birth) are rebased onto
    the record's completion wall-clock so sinks get absolute nanosecond
    timestamps, the shape OTLP expects.
    """
    spans = []
    for record in records:
        base_ns = int(
            (record.get("unix_ms", 0) - record.get("duration_ms", 0.0)) * 1e6
        )
        context = {
            "tenant": record.get("tenant"),
            "method": record.get("method"),
            "request_id": record.get("request_id"),
        }
        for entry in record.get("spans", ()):
            start_ns = base_ns + int(float(entry.get("start_ms", 0.0)) * 1e6)
            attributes = [
                {"key": key, "value": {"stringValue": str(value)}}
                for key, value in sorted((entry.get("meta") or {}).items())
            ]
            attributes.extend(
                {"key": key, "value": {"stringValue": str(value)}}
                for key, value in context.items()
                if value is not None
            )
            spans.append(
                {
                    "traceId": record.get("trace_id", ""),
                    "spanId": entry.get("span_id", ""),
                    "parentSpanId": entry.get("parent_id") or "",
                    "name": entry.get("name", ""),
                    "startTimeUnixNano": str(start_ns),
                    "endTimeUnixNano": str(
                        start_ns
                        + int(float(entry.get("duration_ms", 0.0)) * 1e6)
                    ),
                    "attributes": attributes,
                }
            )
    return {
        "resourceSpans": [
            {"scopeSpans": [{"scope": {"name": "repro"}, "spans": spans}]}
        ]
    }


def build_exporter(
    registry: MetricsRegistry,
    kind: str | None,
    target: str | None,
    interval_seconds: float = DEFAULT_FLUSH_INTERVAL_SECONDS,
    max_retries: int = DEFAULT_MAX_RETRIES,
) -> PushExporter | None:
    """An exporter from config values, or ``None`` when export is off.

    ``kind`` is ``"statsd"`` (target ``host:port``) or ``"json"`` (target
    an ``http(s)://`` URL); anything falsy disables export.
    """
    if not kind:
        return None
    if kind not in EXPORTER_KINDS:
        raise ValueError(
            f"unknown exporter kind {kind!r} (expected one of {EXPORTER_KINDS})"
        )
    if not target:
        raise ValueError(f"exporter kind {kind!r} needs a target")
    common = {"interval_seconds": interval_seconds, "max_retries": max_retries}
    if kind == "statsd":
        host, _, port = target.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(f"statsd target must be host:port, got {target!r}")
        return StatsdExporter(registry, host, int(port), **common)
    if not target.startswith(("http://", "https://")):
        raise ValueError(f"json exporter target must be an http(s) URL, got {target!r}")
    return JsonHttpExporter(registry, target, **common)


def _num(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))
