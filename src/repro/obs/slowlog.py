"""Slow-query log: JSON lines for expand requests over a latency threshold.

Enabled by ``ServiceConfig.slow_query_ms``; each emitted line carries the
request id, method, query id, end-to-end latency, cache disposition, and
the per-stage spans of the request's trace — enough to answer "where did
this slow expand spend its time?" from the log alone.  The ``request_id``
on each line matches the OpenMetrics exemplars ``/v1/metrics`` renders on
the latency histogram buckets, so a fat p99 bucket joins straight to the
span tree that caused it.

Lines go to the ``repro.obs.slowlog`` logger; with
``ServiceConfig.slow_query_log`` set, a :class:`SlowQueryLog` also writes
them to that file with size-triggered rotation (``slow_query_max_bytes``)
to a single ``.1`` backup, so a chatty threshold cannot fill the disk.
"""

from __future__ import annotations

import json
import logging
import os
import threading

slow_query_logger = logging.getLogger("repro.obs.slowlog")

#: rotate the slow-query log once it crosses this size (bytes).
DEFAULT_SLOW_QUERY_MAX_BYTES = 10 * 1024 * 1024


class SlowQueryLog:
    """A size-bounded JSON-lines slow-query log file.

    Appends one line per entry; once the file would cross ``max_bytes``
    it is rotated to ``<path>.1`` (replacing any previous backup) and a
    fresh file is started — at most two files ever exist.  ``rotations``
    counts how often that happened.
    """

    def __init__(self, path: str, max_bytes: int = DEFAULT_SLOW_QUERY_MAX_BYTES):
        if max_bytes <= 0:
            raise ValueError("slow_query_max_bytes must be positive")
        self.path = str(path)
        self.max_bytes = int(max_bytes)
        self.rotations = 0
        self._lock = threading.Lock()

    def write(self, line: str) -> None:
        encoded = line.rstrip("\n") + "\n"
        with self._lock:
            try:
                size = os.path.getsize(self.path)
            except OSError:
                size = 0
            if size > 0 and size + len(encoded.encode("utf-8")) > self.max_bytes:
                os.replace(self.path, self.path + ".1")
                self.rotations += 1
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(encoded)

    def stats(self) -> dict:
        return {
            "path": self.path,
            "max_bytes": self.max_bytes,
            "rotations": self.rotations,
        }


def log_slow_query(
    *,
    request_id: str | None,
    method: str,
    query_id: str | None,
    latency_ms: float,
    threshold_ms: float,
    cached: bool,
    trace_id: str | None = None,
    spans: list[dict] | None = None,
    error: str | None = None,
    sink: SlowQueryLog | None = None,
) -> None:
    payload = {
        "event": "slow_query",
        "request_id": request_id,
        "method": method,
        "query_id": query_id,
        "latency_ms": round(latency_ms, 3),
        "threshold_ms": threshold_ms,
        "cached": cached,
    }
    if trace_id is not None:
        # joins this line to its stored trace (GET /v1/traces/<trace_id>).
        payload["trace_id"] = trace_id
    if error is not None:
        payload["error"] = error
    if spans:
        payload["spans"] = spans
    line = json.dumps(payload, sort_keys=True)
    slow_query_logger.warning(line)
    if sink is not None:
        sink.write(line)
