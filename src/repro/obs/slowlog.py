"""Slow-query log: JSON lines for expand requests over a latency threshold.

Enabled by ``ServiceConfig.slow_query_ms``; each emitted line carries the
request id, method, query id, end-to-end latency, cache disposition, and
the per-stage spans of the request's trace — enough to answer "where did
this slow expand spend its time?" from the log alone.
"""

from __future__ import annotations

import json
import logging

slow_query_logger = logging.getLogger("repro.obs.slowlog")


def log_slow_query(
    *,
    request_id: str | None,
    method: str,
    query_id: str | None,
    latency_ms: float,
    threshold_ms: float,
    cached: bool,
    spans: list[dict] | None = None,
    error: str | None = None,
) -> None:
    payload = {
        "event": "slow_query",
        "request_id": request_id,
        "method": method,
        "query_id": query_id,
        "latency_ms": round(latency_ms, 3),
        "threshold_ms": threshold_ms,
        "cached": cached,
    }
    if error is not None:
        payload["error"] = error
    if spans:
        payload["spans"] = spans
    slow_query_logger.warning(json.dumps(payload, sort_keys=True))
