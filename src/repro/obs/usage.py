"""Billing-grade per-tenant usage metering.

:class:`UsageMeter` turns the execute measurements the serving path already
takes into per-tenant **compute-seconds** — the raw material for billing,
where request counts (the gate's view) are not enough because one tenant's
requests may be 100x more expensive than another's:

* a coalesced batch's execute wall-time is split evenly across the batch
  (*batch-amortized share*), so riders in one forward pass don't each get
  billed the whole pass;
* cache hits are billed at cache cost — the time the lookup itself took —
  not at the cost of the execute they avoided;
* fit jobs are billed to the tenant that requested them, for the fit's
  full wall-time.

Totals are kept in memory (bounded: tenants beyond ``max_tenants``
aggregate under :data:`OVERFLOW_TENANT`, mirroring the metrics registry's
per-family series cap) and periodically rolled up to a **JSONL ledger**:
one line per tenant per rollup window carrying the window's deltas, so the
ledger stays append-only, bounded by traffic-time rather than request
count, and summable offline — ``repro usage report`` does exactly that via
:func:`read_ledger`.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Callable

#: unkeyed traffic is attributed here (matches the gate's anonymous tenant).
ANONYMOUS_TENANT = "anonymous"
#: tenants beyond the cardinality cap aggregate under this bucket.
OVERFLOW_TENANT = "__overflow__"
#: default cap on distinct tenants tracked in memory (the metrics
#: registry's per-family series cap, same rationale).
MAX_TENANTS = 64

_ZERO = {
    "requests": 0,
    "cache_hits": 0,
    "fits": 0,
    "compute_seconds": 0.0,
    "fit_seconds": 0.0,
}


class UsageMeter:
    """Accumulates per-tenant compute-seconds; optionally ledger-backed."""

    def __init__(
        self,
        ledger_path: str | None = None,
        rollup_interval_seconds: float = 30.0,
        max_tenants: int = MAX_TENANTS,
        clock: Callable[[], float] = time.time,
    ):
        self.ledger_path = ledger_path
        self.rollup_interval_seconds = max(0.1, float(rollup_interval_seconds))
        self.max_tenants = max(1, int(max_tenants))
        self.clock = clock
        self._lock = threading.Lock()
        self._totals: dict[str, dict] = {}
        #: per-tenant deltas since the last ledger rollup.
        self._window: dict[str, dict] = {}
        self._last_rollup = clock()
        self._dropped = 0
        self._write_errors = 0

    # -- charging --------------------------------------------------------------------
    def charge_expand(
        self,
        tenant: str | None,
        compute_seconds: float,
        method: str | None = None,
        cached: bool = False,
    ) -> None:
        """Bill one expand request: a batch-amortized execute share, or the
        cache-lookup cost for a hit."""
        del method  # attributed per tenant, not per method (keeps cardinality flat)
        with self._lock:
            for entry in self._buckets_locked(tenant):
                entry["requests"] += 1
                if cached:
                    entry["cache_hits"] += 1
                entry["compute_seconds"] += compute_seconds
        if self.ledger_path is not None:
            self.maybe_rollup()

    def charge_fit(
        self, tenant: str | None, compute_seconds: float, method: str | None = None
    ) -> None:
        """Bill a fit job's wall-time to the tenant that requested it."""
        del method
        with self._lock:
            for entry in self._buckets_locked(tenant):
                entry["fits"] += 1
                entry["fit_seconds"] += compute_seconds
                entry["compute_seconds"] += compute_seconds
        if self.ledger_path is not None:
            self.maybe_rollup()

    def _buckets_locked(self, tenant: str | None) -> tuple[dict, ...]:
        """The buckets one charge lands in: always the running total;
        also the ledger window, but only when a ledger is configured —
        a meter without one skips the window entirely (metering sits on
        the cached hot path, so every dict touched here is paid per
        request)."""
        name = tenant if tenant else ANONYMOUS_TENANT
        totals = self._totals
        bucket = totals.get(name)
        if bucket is None:
            if len(totals) >= self.max_tenants:
                # Same discipline as MetricsRegistry's series cap: never grow
                # unboundedly off a hostile keyfile; aggregate and count.
                name = OVERFLOW_TENANT
                self._dropped += 1
                bucket = totals.get(name)
            if bucket is None:
                bucket = totals[name] = dict(_ZERO)
        if self.ledger_path is None:
            return (bucket,)
        window = self._window.get(name)
        if window is None:
            window = self._window[name] = dict(_ZERO)
        return bucket, window

    # -- ledger ----------------------------------------------------------------------
    def maybe_rollup(self, force: bool = False) -> int:
        """Append the window's per-tenant deltas to the ledger when the
        rollup interval elapsed (or ``force``).  Returns lines written."""
        if self.ledger_path is None:
            return 0
        now = self.clock()
        with self._lock:
            due = force or (now - self._last_rollup) >= self.rollup_interval_seconds
            if not due or not self._window:
                return 0
            window, self._window = self._window, {}
            self._last_rollup = now
        lines = []
        for tenant in sorted(window):
            payload = {"event": "usage", "ts": round(now, 3), "tenant": tenant}
            payload.update(window[tenant])
            payload["compute_seconds"] = round(payload["compute_seconds"], 9)
            payload["fit_seconds"] = round(payload["fit_seconds"], 9)
            lines.append(json.dumps(payload, sort_keys=True))
        try:
            with open(self.ledger_path, "a", encoding="utf-8") as handle:
                handle.write("\n".join(lines) + "\n")
        except OSError:
            with self._lock:
                self._write_errors += 1
            return 0
        return len(lines)

    def close(self) -> None:
        """Flush any un-rolled-up window to the ledger."""
        self.maybe_rollup(force=True)

    # -- reporting -------------------------------------------------------------------
    def summary(self) -> dict:
        with self._lock:
            tenants = {
                tenant: {
                    **bucket,
                    "compute_seconds": round(bucket["compute_seconds"], 6),
                    "fit_seconds": round(bucket["fit_seconds"], 6),
                }
                for tenant, bucket in sorted(self._totals.items())
            }
            return {
                "tenants": tenants,
                "tracked": len(tenants),
                "max_tenants": self.max_tenants,
                "dropped": self._dropped,
                "ledger": self.ledger_path,
                "write_errors": self._write_errors,
            }

    def stats(self) -> dict:
        return self.summary()


def read_ledger(path: str) -> dict[str, dict]:
    """Sum a JSONL usage ledger into per-tenant totals (offline; the
    ``repro usage report`` backend).  Malformed lines are skipped."""
    totals: dict[str, dict] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                continue
            if payload.get("event") != "usage":
                continue
            tenant = payload.get("tenant")
            if not isinstance(tenant, str):
                continue
            bucket = totals.setdefault(tenant, dict(_ZERO))
            for key in _ZERO:
                value = payload.get(key, 0)
                if isinstance(value, (int, float)):
                    bucket[key] += value
    return totals
